// Package tenant multiplexes many independent sketch streams through
// one process: a registry owns one pipeline.Monitor (and therefore one
// streaming engine) per tenant ID, all sharing the process-wide mat
// worker pool and obs registry, with an LRU/idle-deadline hibernation
// policy that checkpoints idle tenants to disk through the ckpt v3
// codec and transparently restores them on their next frame.
//
// The economics come straight from Frequent Directions: a tenant's
// entire stream state — per-shard sketches, sampler RNG positions,
// sliding window, audit ledger — is a small mergeable summary, so an
// idle beamline costs a file, not RAM or goroutines. Checkpoint resume
// is bit-exact, so a hibernate→restore cycle is invisible to sketch
// bytes, certificates, and audit journals; the only observable trace is
// the tenant_evict/tenant_restore pair in the service journal.
//
// Registry state machine (per tenant):
//
//	resident ──(idle deadline / residency pressure)──► hibernating ──► hibernated
//	hibernated ──(next frame or pinned access)──► restoring ──► resident
//
// The transitional states are ownership markers: exactly one goroutine
// performs the heavy work (checkpoint save or load) outside the
// registry lock while everyone else waits on the condition variable, so
// no lock is ever held across linear algebra or disk IO and two
// concurrent restores can never deadlock hibernating each other's
// victims. Pins (acquired by Monitor/Certificate/Drain and held by the
// dispatcher's handoff) block hibernation while a tenant's state is
// externally visible.
//
// Ingest never touches an engine directly: frames enter per-tenant
// bounded ingress queues (admission control — a producer blocks on its
// own tenant's quota, never on another tenant's) and a single
// fair-share dispatcher moves them into engines with a weighted
// deficit-round-robin pass and a non-blocking TryEnqueue handoff, so
// one tenant's slow reconcile backs its own queue up and costs everyone
// else nothing. See pump.go.
package tenant

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"time"

	"arams/internal/audit"
	"arams/internal/ckpt"
	"arams/internal/imgproc"
	"arams/internal/obs"
	"arams/internal/pipeline"
)

// registryObs is the registry-level observability surface (process-wide;
// the per-tenant hot-path series carry tenant labels and live on each
// tenant's engine). The series register in Open, not at package init,
// so merely linking this package — every lclsmon build does — leaves a
// single-tenant run's exposition byte-identical to historical builds.
type registryObs struct {
	tenants      *obs.Gauge
	resident     *obs.Gauge
	admissions   *obs.Counter
	hibernations *obs.Counter
	restores     *obs.Counter
}

func newRegistryObs() registryObs {
	return registryObs{
		tenants:      obs.Default().Gauge("arams_tenant_count"),
		resident:     obs.Default().Gauge("arams_tenant_resident"),
		admissions:   obs.Default().Counter("arams_tenant_admissions_total"),
		hibernations: obs.Default().Counter("arams_tenant_hibernations_total"),
		restores:     obs.Default().Counter("arams_tenant_restores_total"),
	}
}

// State is a tenant's position in the registry lifecycle.
type State int

const (
	// Hibernated: the tenant's whole stream state lives in its
	// checkpoint file; no memory, no goroutines.
	Hibernated State = iota
	// Restoring: a goroutine is loading the checkpoint; frames queue.
	Restoring
	// Resident: a live monitor/engine is serving the tenant.
	Resident
	// Idle: resident, but past the idle deadline — an eviction
	// candidate the janitor will hibernate (reporting-only state,
	// derived from the last-activity clock).
	Idle
	// Hibernating: a goroutine is checkpointing the tenant out.
	Hibernating
)

func (s State) String() string {
	switch s {
	case Hibernated:
		return "hibernated"
	case Restoring:
		return "restoring"
	case Resident:
		return "resident"
	case Idle:
		return "idle"
	case Hibernating:
		return "hibernating"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// Config parameterizes the registry.
type Config struct {
	// Dir is the hibernation directory: tenant <id> checkpoints to
	// Dir/tenant-<id>.ckpt. Required; Open scans it for hibernated
	// tenants left by a previous process, so a crash or restart loses
	// nothing that was checkpointed.
	Dir string
	// Pipeline is the per-tenant monitor configuration template. The
	// registry sets its Tenant field per tenant (metric labeling) and
	// its Audit field from NewAuditor; the caller's Audit must be nil —
	// a shared auditor would entangle tenants' checkpointable state.
	Pipeline pipeline.Config
	// Window is each tenant's sliding-window size (monitor default
	// when 0).
	Window int
	// MaxResident caps how many tenants hold live engines at once
	// (0 = unlimited). Over the cap the registry hibernates the
	// least-recently-active unpinned tenant with no backlog; when every
	// resident tenant is mid-burst the cap is allowed to overflow
	// rather than thrash a busy tenant to disk.
	MaxResident int
	// MaxTenants caps the total tenant population, resident plus
	// hibernated (0 = unlimited). Append/Admit refuse beyond it.
	MaxTenants int
	// IdleAfter is the idle deadline: a resident tenant with no frame
	// activity for this long is hibernated by the next sweep (0 = only
	// residency pressure evicts).
	IdleAfter time.Duration
	// JanitorEvery runs a background sweep at this period (0 = no
	// janitor; callers drive Sweep explicitly, as tests do).
	JanitorEvery time.Duration
	// QueueQuota bounds each tenant's ingress queue (default 256).
	// A producer whose tenant is at quota blocks — per-tenant
	// backpressure, never drops, never another tenant's problem.
	QueueQuota int
	// Quantum is the fair-share dispatcher's per-pass frame allowance
	// for a weight-1 tenant (default 64, the engine's batch size).
	Quantum int
	// Weights maps tenant ID → dispatch weight (default 1): a weight-w
	// tenant gets w quanta per round-robin pass.
	Weights map[string]int
	// NewAuditor, when set, builds each tenant's private quality
	// auditor at first admission. Per-tenant auditors keep drift
	// detector and journal state inside the tenant's own checkpoint.
	NewAuditor func(id string) *audit.Auditor
	// Journal receives the registry's tenant_admission, tenant_evict,
	// and tenant_restore events (audit.Default() when nil).
	Journal *audit.Journal
}

func (c Config) withDefaults() Config {
	if c.QueueQuota <= 0 {
		c.QueueQuota = 256
	}
	if c.Quantum <= 0 {
		c.Quantum = 64
	}
	if c.Journal == nil {
		c.Journal = audit.Default()
	}
	return c
}

// qframe is one frame waiting in a tenant's ingress queue.
type qframe struct {
	im  *imgproc.Image
	tag int
}

// entry is one tenant's registry slot. Every field is guarded by the
// registry mutex; the monitor itself is only dereferenced while the
// entry is pinned or inside a transition the caller owns.
type entry struct {
	id  string
	st  State // Resident, Hibernating, Hibernated, Restoring (never Idle)
	mon *pipeline.Monitor

	q       []qframe // ingress queue, FIFO
	deficit int      // fair-share allowance carried between passes

	pins      int       // external holds blocking hibernation
	lastTouch time.Time // last frame or pinned access
	ingests   int       // stream count at last hibernate (display while off)

	lastCert audit.Certificate // cut at hibernate / Certificate()
	hasCert  bool

	restoreErr error // sticky: the checkpoint failed to load
}

// Registry owns the tenant table. All methods are safe for concurrent
// use; one mutex guards every entry (transitions park heavy work
// outside it under Hibernating/Restoring ownership markers).
type Registry struct {
	cfg Config
	ro  registryObs

	mu       sync.Mutex
	cond     *sync.Cond
	ents     map[string]*entry
	ring     []*entry // admission order; dispatcher rotates over it
	next     int      // ring rotation cursor
	closed   bool
	evicting bool // a dispatcher-spawned evictOverflow is running

	dispatcherDone chan struct{}
	janitorStop    chan struct{}
	janitorDone    chan struct{}
}

// Open creates a registry over cfg.Dir, admitting (as hibernated) every
// tenant checkpoint a previous process left there, and starts the
// fair-share dispatcher plus, with JanitorEvery set, the idle janitor.
func Open(cfg Config) (*Registry, error) {
	cfg = cfg.withDefaults()
	if cfg.Dir == "" {
		return nil, errors.New("tenant: Config.Dir is required")
	}
	if cfg.Pipeline.Audit != nil {
		return nil, errors.New("tenant: Config.Pipeline.Audit must be nil; use NewAuditor for per-tenant auditors")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("tenant: creating %s: %w", cfg.Dir, err)
	}
	r := &Registry{
		cfg:            cfg,
		ro:             newRegistryObs(),
		ents:           make(map[string]*entry),
		dispatcherDone: make(chan struct{}),
	}
	r.cond = sync.NewCond(&r.mu)

	// Crash recovery: every tenant-<id>.ckpt in the directory is a
	// hibernated tenant; it restores lazily on its next frame.
	names, err := filepath.Glob(filepath.Join(cfg.Dir, "tenant-*.ckpt"))
	if err != nil {
		return nil, fmt.Errorf("tenant: scanning %s: %w", cfg.Dir, err)
	}
	for _, p := range names {
		id := strings.TrimSuffix(strings.TrimPrefix(filepath.Base(p), "tenant-"), ".ckpt")
		if err := ValidateID(id); err != nil {
			continue // not one of ours
		}
		r.admitLocked(id, Hibernated)
	}

	go r.dispatch()
	if cfg.JanitorEvery > 0 {
		r.janitorStop = make(chan struct{})
		r.janitorDone = make(chan struct{})
		go r.janitor()
	}
	return r, nil
}

// ValidateID reports whether id is usable as a tenant identifier: it
// must be non-empty, at most 64 bytes, and drawn from [A-Za-z0-9._-]
// (it becomes a checkpoint filename and a Prometheus label value).
func ValidateID(id string) error {
	if id == "" {
		return errors.New("tenant: empty tenant id")
	}
	if len(id) > 64 {
		return fmt.Errorf("tenant: id %q exceeds 64 bytes", id)
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return fmt.Errorf("tenant: id %q contains %q; allowed: [A-Za-z0-9._-]", id, c)
		}
	}
	return nil
}

func (r *Registry) ckptPath(id string) string {
	return filepath.Join(r.cfg.Dir, "tenant-"+id+".ckpt")
}

// tenantCfg builds one tenant's monitor configuration: the shared
// template with tenant-scoped metric labels and a private auditor.
func (r *Registry) tenantCfg(id string) pipeline.Config {
	cfg := r.cfg.Pipeline
	cfg.Tenant = id
	if r.cfg.NewAuditor != nil {
		cfg.Audit = r.cfg.NewAuditor(id)
	}
	return cfg
}

// Admit registers a tenant explicitly (Append does it implicitly). It
// is idempotent for known tenants; new tenants count against
// MaxTenants and are journaled as tenant_admission events.
func (r *Registry) Admit(id string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return errors.New("tenant: registry closed")
	}
	if r.ents[id] != nil {
		return nil
	}
	if err := ValidateID(id); err != nil {
		return err
	}
	if r.cfg.MaxTenants > 0 && len(r.ents) >= r.cfg.MaxTenants {
		return fmt.Errorf("tenant: registry full (%d tenants)", len(r.ents))
	}
	r.admitLocked(id, Hibernated)
	return nil
}

// admitLocked inserts a tenant slot; the caller validated capacity.
// New tenants start Hibernated: the first frame (or pinned access)
// "restores" them, which for an absent checkpoint file means creating
// a fresh monitor — one code path covers both births and revivals.
func (r *Registry) admitLocked(id string, st State) *entry {
	en := &entry{id: id, st: st, lastTouch: time.Now()}
	r.ents[id] = en
	r.ring = append(r.ring, en)
	r.ro.tenants.SetInt(len(r.ents))
	r.ro.admissions.Inc()
	r.cfg.Journal.Record(audit.KindTenantAdmission,
		"tenant admitted: "+id,
		audit.A("tenants", float64(len(r.ents))))
	return en
}

// residentCountLocked counts live engines (Resident + Hibernating:
// a tenant mid-checkpoint still holds its memory).
func (r *Registry) residentCountLocked() int {
	n := 0
	for _, en := range r.ring {
		if en.st == Resident || en.st == Hibernating {
			n++
		}
	}
	return n
}

// Tenants returns the current tenant set, sorted by admission order.
func (r *Registry) Tenants() []Info {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Info, 0, len(r.ring))
	for _, en := range r.ring {
		out = append(out, r.infoLocked(en))
	}
	return out
}

// infoLocked snapshots one tenant's reportable state.
func (r *Registry) infoLocked(en *entry) Info {
	inf := Info{
		ID:         en.id,
		State:      en.st,
		QueueDepth: len(en.q),
		Pins:       en.pins,
		Ingests:    en.ingests,
		IdleFor:    time.Since(en.lastTouch),
	}
	if en.st == Resident {
		inf.Ingests = en.mon.Ingested()
		inf.EngineQueue = en.mon.Engine().QueueDepth()
		if r.cfg.IdleAfter > 0 && inf.IdleFor >= r.cfg.IdleAfter && en.pins == 0 && len(en.q) == 0 {
			inf.State = Idle
		}
	}
	if en.hasCert {
		c := en.lastCert
		inf.Certificate = &c
	}
	return inf
}

// acquire pins a tenant resident, restoring it first if hibernated.
// Callers must release() the returned entry when done with the monitor.
func (r *Registry) acquire(id string) (*entry, *pipeline.Monitor, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	en := r.ents[id]
	if en == nil {
		return nil, nil, fmt.Errorf("tenant: unknown tenant %q", id)
	}
	for {
		if r.closed {
			return nil, nil, errors.New("tenant: registry closed")
		}
		switch en.st {
		case Resident:
			en.pins++
			en.lastTouch = time.Now()
			return en, en.mon, nil
		case Hibernated:
			if en.restoreErr != nil {
				return nil, nil, en.restoreErr
			}
			r.startRestoreLocked(en)
		}
		r.cond.Wait()
	}
}

func (r *Registry) release(en *entry) {
	r.mu.Lock()
	en.pins--
	r.cond.Broadcast()
	r.mu.Unlock()
}

// Monitor pins a tenant resident and returns its live monitor plus the
// release closure that unpins it. While pinned the tenant cannot be
// hibernated, so the monitor is safe for snapshots, state capture, and
// certificate reads until release is called.
func (r *Registry) Monitor(id string) (*pipeline.Monitor, func(), error) {
	en, m, err := r.acquire(id)
	if err != nil {
		return nil, nil, err
	}
	var once sync.Once
	return m, func() { once.Do(func() { r.release(en) }) }, nil
}

// Certificate returns the tenant's current error-bound certificate.
// For a resident tenant it is cut live from the engine (forcing a
// reconcile, so it covers every shard's stream); for a hibernated one
// the certificate cached at hibernation is served without waking the
// tenant — reading a bound must not cost a restore.
func (r *Registry) Certificate(id string) (audit.Certificate, error) {
	r.mu.Lock()
	en := r.ents[id]
	if en == nil {
		r.mu.Unlock()
		return audit.Certificate{}, fmt.Errorf("tenant: unknown tenant %q", id)
	}
	if en.st == Hibernated && en.hasCert {
		c := en.lastCert
		r.mu.Unlock()
		return c, nil
	}
	r.mu.Unlock()

	en, m, err := r.acquire(id)
	if err != nil {
		return audit.Certificate{}, err
	}
	cert := m.Engine().Certificate()
	r.mu.Lock()
	en.lastCert, en.hasCert = cert, true
	en.pins--
	r.cond.Broadcast()
	r.mu.Unlock()
	return cert, nil
}

// startRestoreLocked claims a hibernated tenant for restoration and
// launches the loader goroutine. Caller holds the registry mutex.
func (r *Registry) startRestoreLocked(en *entry) {
	en.st = Restoring
	go r.restore(en)
}

// restore loads the tenant's checkpoint (or creates a fresh monitor
// when none exists — a brand-new tenant) outside the registry lock.
func (r *Registry) restore(en *entry) {
	path := r.ckptPath(en.id)
	var m *pipeline.Monitor
	state, lerr := ckpt.Load(path)
	var err error
	switch {
	case lerr == nil:
		ms, ok := state.(*pipeline.MonitorState)
		if !ok {
			err = fmt.Errorf("tenant: %s holds %T, not a monitor state", path, state)
			break
		}
		m, err = pipeline.NewMonitorFromState(r.tenantCfg(en.id), ms)
		if err == nil {
			r.ro.restores.Inc()
			r.cfg.Journal.Record(audit.KindTenantRestore,
				"tenant restored from hibernation: "+en.id,
				audit.A("ingests", float64(ms.Ingests)),
				audit.A("window_frames", float64(len(ms.Frames))))
		}
	case errors.Is(lerr, os.ErrNotExist):
		m = pipeline.NewMonitor(r.tenantCfg(en.id), r.cfg.Window)
	default:
		err = lerr
	}

	r.mu.Lock()
	if err != nil {
		// Sticky failure: the tenant stays hibernated and every queued
		// or future frame is refused until the operator repairs the
		// checkpoint — silently restarting the stream from scratch
		// would certify bounds over the wrong stream.
		en.st = Hibernated
		en.restoreErr = err
		en.q = nil
	} else {
		en.st = Resident
		en.mon = m
		en.restoreErr = nil
		en.lastTouch = time.Now()
	}
	r.ro.resident.SetInt(r.residentCountLocked())
	r.cond.Broadcast()
	r.mu.Unlock()

	if err == nil {
		r.evictOverflow()
	}
}

// Hibernate checkpoints a tenant out now, regardless of idle state. It
// waits for the tenant's backlog (ingress + engine queues) to drain so
// the checkpoint covers every admitted frame.
func (r *Registry) Hibernate(id string) error {
	if err := r.Drain(id); err != nil {
		return err
	}
	r.mu.Lock()
	en := r.ents[id]
	for en != nil && (en.st == Restoring || en.st == Hibernating) {
		r.cond.Wait()
	}
	if en == nil || en.st != Resident || en.pins > 0 || len(en.q) > 0 {
		// Hibernated already, or busy again — nothing to do / retry later.
		st := Hibernated
		if en != nil {
			st = en.st
		}
		r.mu.Unlock()
		if st == Resident {
			return fmt.Errorf("tenant: %s is pinned or has backlog; not hibernated", id)
		}
		return nil
	}
	en.st = Hibernating
	r.mu.Unlock()
	return r.hibernate(en, "explicit")
}

// hibernate checkpoints one tenant out; the caller has already set
// st == Hibernating (the ownership marker) and dropped the lock. The
// reason string lands in the journal event message.
func (r *Registry) hibernate(en *entry, reason string) error {
	m := en.mon
	s, serr := m.Suspend()
	var err error
	if s == nil {
		err = fmt.Errorf("tenant: suspending %s: %w", en.id, serr)
	} else {
		err = ckpt.Save(r.ckptPath(en.id), s)
	}
	if err != nil {
		// The state handle (when we have one) still holds the whole
		// stream; resurrect the tenant in memory rather than lose it.
		var m2 *pipeline.Monitor
		var rerr error
		if s != nil {
			m2, rerr = pipeline.NewMonitorFromState(r.tenantCfg(en.id), s)
		}
		r.mu.Lock()
		if m2 != nil && rerr == nil {
			en.mon, en.st = m2, Resident
		} else {
			en.mon, en.st = nil, Hibernated
			en.restoreErr = err
		}
		r.ro.resident.SetInt(r.residentCountLocked())
		r.cond.Broadcast()
		r.mu.Unlock()
		return err
	}

	// The cached certificate is cut from the suspended state itself —
	// Suspend drains any frames still mid-batch in the pump, so only
	// the state's own ledgers cover every admitted frame. /tenantz
	// reports this bound for sleeping tenants without waking them.
	cert := s.Certificate()
	r.ro.hibernations.Inc()
	r.cfg.Journal.Record(audit.KindTenantEvict,
		"tenant hibernated ("+reason+"): "+en.id,
		audit.A("ingests", float64(s.Ingests)),
		audit.A("window_frames", float64(len(s.Frames))),
		audit.A("cov_bound", cert.CovBound()))
	r.mu.Lock()
	en.mon = nil
	en.st = Hibernated
	en.ingests = s.Ingests
	en.lastCert, en.hasCert = cert, true
	r.ro.resident.SetInt(r.residentCountLocked())
	r.cond.Broadcast()
	r.mu.Unlock()
	return nil
}

// evictable reports whether a resident tenant can be hibernated right
// now: unpinned and with no admitted-but-unsketched frames anywhere.
func (r *Registry) evictableLocked(en *entry) bool {
	return en.st == Resident && en.pins == 0 && len(en.q) == 0 &&
		en.mon.Engine().QueueDepth() == 0
}

// maybeEvictLocked spawns one background evictOverflow when the
// residency cap is exceeded and some tenant is actually evictable.
// The dispatcher calls it every pass — that is what makes MaxResident
// bite under continuous load: the moment a tenant's backlog drains,
// the overflow worker hibernates it, without the pump ever blocking on
// a checkpoint write. The evicting flag keeps it to one worker; the
// caller holds the registry mutex.
func (r *Registry) maybeEvictLocked() {
	if r.cfg.MaxResident <= 0 || r.evicting || r.closed {
		return
	}
	if r.residentCountLocked() <= r.cfg.MaxResident {
		return
	}
	any := false
	for _, en := range r.ring {
		if r.evictableLocked(en) {
			any = true
			break
		}
	}
	if !any {
		return
	}
	r.evicting = true
	go func() {
		r.evictOverflow()
		r.mu.Lock()
		r.evicting = false
		r.mu.Unlock()
	}()
}

// evictOverflow enforces MaxResident: while too many tenants hold live
// engines, the least-recently-active evictable one is hibernated. When
// every resident tenant is pinned or mid-burst, the cap overflows
// rather than thrashing a busy tenant to disk.
func (r *Registry) evictOverflow() {
	if r.cfg.MaxResident <= 0 {
		return
	}
	for {
		r.mu.Lock()
		if r.residentCountLocked() <= r.cfg.MaxResident {
			r.mu.Unlock()
			return
		}
		var victim *entry
		for _, en := range r.ring {
			if !r.evictableLocked(en) {
				continue
			}
			if victim == nil || en.lastTouch.Before(victim.lastTouch) {
				victim = en
			}
		}
		if victim == nil {
			r.mu.Unlock()
			return
		}
		victim.st = Hibernating
		r.mu.Unlock()
		r.hibernate(victim, "residency pressure")
	}
}

// Sweep hibernates every resident tenant idle past the deadline (and
// re-checks the residency cap). Returns how many tenants it put to
// sleep. The janitor calls it on a timer; tests call it directly.
func (r *Registry) Sweep(now time.Time) int {
	if r.cfg.IdleAfter <= 0 {
		r.evictOverflow()
		return 0
	}
	n := 0
	for {
		r.mu.Lock()
		var victim *entry
		for _, en := range r.ring {
			if r.evictableLocked(en) && now.Sub(en.lastTouch) >= r.cfg.IdleAfter {
				victim = en
				break
			}
		}
		if victim == nil {
			r.mu.Unlock()
			break
		}
		victim.st = Hibernating
		r.mu.Unlock()
		if r.hibernate(victim, "idle deadline") == nil {
			n++
		}
	}
	r.evictOverflow()
	return n
}

func (r *Registry) janitor() {
	defer close(r.janitorDone)
	t := time.NewTicker(r.cfg.JanitorEvery)
	defer t.Stop()
	for {
		select {
		case <-r.janitorStop:
			return
		case now := <-t.C:
			r.Sweep(now)
		}
	}
}

// Drain blocks until every frame appended for the tenant before the
// call has been sketched (ingress queue empty, engine queue empty).
func (r *Registry) Drain(id string) error {
	r.mu.Lock()
	en := r.ents[id]
	if en == nil {
		r.mu.Unlock()
		return fmt.Errorf("tenant: unknown tenant %q", id)
	}
	for len(en.q) > 0 || en.st == Restoring || en.st == Hibernating {
		if en.restoreErr != nil {
			err := en.restoreErr
			r.mu.Unlock()
			return err
		}
		r.cond.Wait()
	}
	if en.st != Resident {
		// Hibernated with nothing queued: the engine was fully drained
		// before its state was cut, so there is nothing in flight.
		r.mu.Unlock()
		return nil
	}
	en.pins++
	m := en.mon
	r.mu.Unlock()
	m.Engine().Drain()
	r.release(en)
	return nil
}

// DrainAll drains every known tenant.
func (r *Registry) DrainAll() error {
	r.mu.Lock()
	ids := make([]string, 0, len(r.ring))
	for _, en := range r.ring {
		ids = append(ids, en.id)
	}
	r.mu.Unlock()
	var first error
	for _, id := range ids {
		if err := r.Drain(id); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Close flushes every ingress queue, hibernates every resident tenant
// (so the whole registry state survives on disk), and stops the
// dispatcher and janitor. Append and Admit fail after Close.
func (r *Registry) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	r.cond.Broadcast()
	r.mu.Unlock()

	if r.janitorStop != nil {
		close(r.janitorStop)
		<-r.janitorDone
	}
	<-r.dispatcherDone

	// The dispatcher exits only once every ingress queue it can serve
	// is empty; hibernate whatever is still resident, and wait out any
	// transition another goroutine (background evictor, late restore)
	// still owns — Close must not return while a hibernation write is
	// in flight, or a successor registry could scan a half-populated
	// directory.
	var first error
	for {
		r.mu.Lock()
		var victim *entry
		inFlight := false
		for _, en := range r.ring {
			if en.st == Hibernating || en.st == Restoring {
				inFlight = true
			}
			if en.st == Resident && en.pins == 0 && victim == nil {
				victim = en
			}
		}
		if victim == nil {
			if !inFlight {
				r.mu.Unlock()
				break
			}
			r.cond.Wait()
			r.mu.Unlock()
			continue
		}
		victim.st = Hibernating
		r.mu.Unlock()
		if err := r.hibernate(victim, "shutdown"); err != nil && first == nil {
			first = err
		}
	}
	return first
}
