package tenant_test

// Multi-tenant registry coverage: hibernate/restore bit-exactness
// (including a full process "death" between the two halves of a
// stream), residency-cap eviction equivalence, fair-share isolation
// when one tenant is wedged, /tenantz exposition hygiene, and a -race
// hammer with forced evictions.

import (
	"bytes"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"arams/internal/audit"
	"arams/internal/ckpt"
	"arams/internal/imgproc"
	"arams/internal/mat"
	"arams/internal/obs"
	"arams/internal/pipeline"
	"arams/internal/rng"
	"arams/internal/sketch"
	"arams/internal/tenant"
)

func tenantFrames(n, w, h int, seed uint64) []*imgproc.Image {
	g := rng.New(seed)
	frames := make([]*imgproc.Image, n)
	for i := range frames {
		im := imgproc.NewImage(w, h)
		cx, cy := float64(i%w), float64((i/2)%h)
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				dx, dy := float64(x)-cx, float64(y)-cy
				im.Set(x, y, 10/(1+dx*dx+dy*dy)+0.1*g.Norm())
			}
		}
		frames[i] = im
	}
	return frames
}

func tenantPipeline() pipeline.Config {
	return pipeline.Config{
		Sketch:    sketch.Config{Ell0: 6, Beta: 1, Seed: 21},
		LatentDim: 4,
		Shards:    2,
	}
}

func tenantConfig(dir string) tenant.Config {
	return tenant.Config{
		Dir:      dir,
		Pipeline: tenantPipeline(),
		Window:   16,
		Journal:  audit.NewJournal(256),
	}
}

// stateBytes drains a tenant and marshals its full monitor state, the
// registry-side equivalent of hashing every shard sketch, RNG position,
// and window frame at once.
func stateBytes(t *testing.T, r *tenant.Registry, id string) []byte {
	t.Helper()
	if err := r.Drain(id); err != nil {
		t.Fatalf("Drain(%s): %v", id, err)
	}
	m, release, err := r.Monitor(id)
	if err != nil {
		t.Fatalf("Monitor(%s): %v", id, err)
	}
	defer release()
	b, err := ckpt.Marshal(m.State())
	if err != nil {
		t.Fatalf("Marshal(%s): %v", id, err)
	}
	return b
}

// TestHibernateRestoreBitExact is the kill/restore acceptance test at
// the registry layer: a tenant is hibernated mid-stream, the process
// "dies" (the registry is closed and a fresh one opened over the same
// directory), and the stream resumes through the new registry, which
// restores the tenant lazily on its next frame. The final sketch state
// must match an always-resident plain Monitor bit for bit, and the
// composed certificate must still dominate the exactly-computed
// covariance error of the global sketch.
func TestHibernateRestoreBitExact(t *testing.T) {
	const n, w, h, killAt = 64, 6, 6, 37
	frames := tenantFrames(n, w, h, 177)
	dir := t.TempDir()

	// Control: the PR-9-era single-stream path, no registry anywhere.
	control := pipeline.NewMonitor(tenantPipeline(), 16)
	for i, im := range frames {
		control.Ingest(im, i)
	}
	want, err := ckpt.Marshal(control.State())
	if err != nil {
		t.Fatalf("Marshal control: %v", err)
	}

	r, err := tenant.Open(tenantConfig(dir))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for i := 0; i < killAt; i++ {
		if err := r.Append("amo123", frames[i], i); err != nil {
			t.Fatalf("Append frame %d: %v", i, err)
		}
	}
	if err := r.Hibernate("amo123"); err != nil {
		t.Fatalf("Hibernate: %v", err)
	}
	if err := r.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// The "kill": only dir/tenant-amo123.ckpt survives.

	r2, err := tenant.Open(tenantConfig(dir))
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer r2.Close()
	infos := r2.Tenants()
	if len(infos) != 1 || infos[0].ID != "amo123" || infos[0].State != tenant.Hibernated {
		t.Fatalf("recovery scan found %+v, want one hibernated amo123", infos)
	}
	for i := killAt; i < n; i++ {
		if err := r2.Append("amo123", frames[i], i); err != nil {
			t.Fatalf("Append frame %d after restore: %v", i, err)
		}
	}
	got := stateBytes(t, r2, "amo123")
	if !bytes.Equal(got, want) {
		t.Fatal("hibernate→kill→restore changed the monitor state bytes")
	}

	// The restored certificate must still be a valid bound on the
	// exactly-computed covariance error (β = 1: the ledger covers the
	// whole stream).
	cert, err := r2.Certificate("amo123")
	if err != nil {
		t.Fatalf("Certificate: %v", err)
	}
	if cert.Rows != n {
		t.Fatalf("certificate covers %d rows, want %d", cert.Rows, n)
	}
	m, release, err := r2.Monitor("amo123")
	if err != nil {
		t.Fatalf("Monitor: %v", err)
	}
	b := m.Engine().GlobalSketch().Sketch()
	release()
	a := mat.New(n, w*h)
	for i, im := range frames {
		copy(a.Row(i), im.Pix)
	}
	exact := sketch.CovErr(a, b)
	slack := 1e-8 * (1 + cert.FrobMass)
	if exact > cert.CovBound()+slack {
		t.Fatalf("exact covariance error %v exceeds restored certified bound %v",
			exact, cert.CovBound())
	}
}

// TestMaxResidentBitExact runs 32 tenants through a registry capped at
// 8 resident engines — so tenants hibernate and restore continuously
// under residency pressure — and demands every tenant's final state be
// bit-identical to the same streams through an uncapped registry.
func TestMaxResidentBitExact(t *testing.T) {
	const tenants, perTenant, w, h = 32, 24, 6, 6
	ids := make([]string, tenants)
	streams := make([][]*imgproc.Image, tenants)
	for i := range ids {
		ids[i] = "t" + string(rune('a'+i%26)) + string(rune('0'+i/26))
		streams[i] = tenantFrames(perTenant, w, h, uint64(1000+i))
	}

	run := func(maxResident int) map[string][]byte {
		cfg := tenantConfig(t.TempDir())
		cfg.MaxResident = maxResident
		r, err := tenant.Open(cfg)
		if err != nil {
			t.Fatalf("Open(maxResident=%d): %v", maxResident, err)
		}
		defer r.Close()
		// Interleave round-robin across tenants so residency pressure
		// keeps rotating the LRU set through hibernation.
		for f := 0; f < perTenant; f++ {
			for i, id := range ids {
				if err := r.Append(id, streams[i][f], f); err != nil {
					t.Fatalf("Append(%s, %d): %v", id, f, err)
				}
			}
		}
		out := make(map[string][]byte, tenants)
		for _, id := range ids {
			out[id] = stateBytes(t, r, id)
		}
		return out
	}

	want := run(0) // always resident
	got := run(8)  // hibernation churn
	for _, id := range ids {
		if !bytes.Equal(got[id], want[id]) {
			t.Fatalf("tenant %s: state under MaxResident=8 differs from always-resident run", id)
		}
	}
}

// TestFairShareIsolation wedges one tenant (its checkpoint is corrupt,
// so its restore fails and its frames can never drain) and verifies
// the failure is contained: its own Append surfaces the restore error
// once the quota fills, while a healthy neighbor streams to completion
// through the same dispatcher.
func TestFairShareIsolation(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "tenant-wedged.ckpt"), []byte("not a checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg := tenantConfig(dir)
	cfg.QueueQuota = 4
	r, err := tenant.Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer r.Close()

	frames := tenantFrames(32, 6, 6, 7)
	wedgedErr := make(chan error, 1)
	go func() {
		// The corrupt checkpoint makes the restore fail; the sticky
		// error must surface here instead of blocking forever.
		var err error
		for i := 0; i < 2*cfg.QueueQuota && err == nil; i++ {
			err = r.Append("wedged", frames[i], i)
		}
		wedgedErr <- err
	}()

	for i, im := range frames {
		if err := r.Append("healthy", im, i); err != nil {
			t.Fatalf("healthy tenant stalled at frame %d: %v", i, err)
		}
	}
	if err := r.Drain("healthy"); err != nil {
		t.Fatalf("Drain(healthy): %v", err)
	}
	m, release, err := r.Monitor("healthy")
	if err != nil {
		t.Fatalf("Monitor(healthy): %v", err)
	}
	ingested := m.Ingested()
	release()
	if ingested != len(frames) {
		t.Fatalf("healthy tenant sketched %d frames, want %d", ingested, len(frames))
	}

	select {
	case err := <-wedgedErr:
		if err == nil {
			t.Fatal("wedged tenant's Append never surfaced the restore failure")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("wedged tenant's producer is still blocked")
	}
}

// TestTenantzExposition locks the /tenantz surface: the prom rendering
// must pass the exposition linter with tenants in several lifecycle
// states, and the JSON/HTML renderings must at least identify every
// tenant.
func TestTenantzExposition(t *testing.T) {
	cfg := tenantConfig(t.TempDir())
	cfg.IdleAfter = time.Nanosecond
	r, err := tenant.Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer r.Close()

	frames := tenantFrames(8, 6, 6, 3)
	for i, im := range frames {
		if err := r.Append("beam-a", im, i); err != nil {
			t.Fatal(err)
		}
		if err := r.Append("diffract.b", im, i); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := r.Certificate("beam-a"); err != nil {
		t.Fatal(err)
	}
	if err := r.Drain("diffract.b"); err != nil {
		t.Fatal(err)
	}
	// Put one tenant to sleep so the table mixes states.
	if err := r.Hibernate("diffract.b"); err != nil {
		t.Fatalf("Hibernate: %v", err)
	}

	h := r.Handler()
	for _, format := range []string{"", "json", "prom"} {
		req := httptest.NewRequest("GET", "/tenantz?format="+format, nil)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		body := rec.Body.String()
		for _, id := range []string{"beam-a", "diffract.b"} {
			if !strings.Contains(body, id) {
				t.Fatalf("format=%q omits tenant %s:\n%s", format, id, body)
			}
		}
		if format == "prom" {
			if err := obs.ValidateExposition(strings.NewReader(body)); err != nil {
				t.Fatalf("/tenantz?format=prom fails lint: %v\n%s", err, body)
			}
			if !strings.Contains(body, `arams_tenantz_cov_bound{tenant="diffract.b"}`) {
				t.Fatalf("hibernated tenant lost its certificate series:\n%s", body)
			}
		}
	}

	// The per-tenant engine series land in the process-wide registry
	// with tenant labels; the full exposition must stay lint-clean with
	// labeled and historical unlabeled variants coexisting.
	var buf bytes.Buffer
	obs.Default().WritePrometheus(&buf)
	if err := obs.ValidateExposition(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("default exposition fails lint with tenant labels: %v", err)
	}
	if !strings.Contains(buf.String(), `arams_engine_frames_total{tenant="beam-a"}`) {
		t.Fatal("per-tenant engine series missing from the default exposition")
	}
}

// TestValidateID pins the tenant-ID alphabet (IDs become checkpoint
// filenames and Prometheus label values).
func TestValidateID(t *testing.T) {
	for _, ok := range []string{"a", "amo86915", "beam-a", "run_12", "x.y.z"} {
		if err := tenant.ValidateID(ok); err != nil {
			t.Errorf("ValidateID(%q) = %v, want nil", ok, err)
		}
	}
	for _, bad := range []string{"", "a/b", "a b", "héllo", strings.Repeat("x", 65)} {
		if err := tenant.ValidateID(bad); err == nil {
			t.Errorf("ValidateID(%q) = nil, want error", bad)
		}
	}
}

// TestRaceHammer exercises the registry under -race: 8 tenants with
// concurrent producers, a janitor with an aggressive idle deadline, a
// residency cap of 2 forcing continuous evictions, and concurrent
// /tenantz scrapes and certificate reads. The assertion is simply that
// every frame lands — the race detector and the deadlock timeout do
// the real work.
func TestRaceHammer(t *testing.T) {
	const tenants, perTenant = 8, 48
	cfg := tenantConfig(t.TempDir())
	cfg.MaxResident = 2
	cfg.IdleAfter = time.Millisecond
	cfg.JanitorEvery = time.Millisecond
	cfg.QueueQuota = 8
	r, err := tenant.Open(cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}

	ids := []string{"h0", "h1", "h2", "h3", "h4", "h5", "h6", "h7"}
	for _, id := range ids {
		if err := r.Admit(id); err != nil {
			t.Fatalf("Admit(%s): %v", id, err)
		}
	}
	var producers sync.WaitGroup
	for i, id := range ids {
		producers.Add(1)
		go func(i int, id string) {
			defer producers.Done()
			frames := tenantFrames(perTenant, 6, 6, uint64(500+i))
			for f, im := range frames {
				if err := r.Append(id, im, f); err != nil {
					t.Errorf("Append(%s, %d): %v", id, f, err)
					return
				}
			}
		}(i, id)
	}
	stop := make(chan struct{})
	var scraper sync.WaitGroup
	scraper.Add(1)
	go func() {
		defer scraper.Done()
		h := r.Handler()
		for {
			select {
			case <-stop:
				return
			default:
			}
			rec := httptest.NewRecorder()
			h.ServeHTTP(rec, httptest.NewRequest("GET", "/tenantz?format=prom", nil))
			r.Tenants()
			r.Certificate(ids[0])
			time.Sleep(time.Millisecond)
		}
	}()

	done := make(chan struct{})
	go func() {
		producers.Wait()
		for _, id := range ids {
			if err := r.Drain(id); err != nil {
				t.Errorf("Drain(%s): %v", id, err)
			}
		}
		close(stop)
		scraper.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Minute):
		t.Fatal("hammer deadlocked")
	}

	for _, id := range ids {
		cert, err := r.Certificate(id)
		if err != nil {
			t.Fatalf("Certificate(%s): %v", id, err)
		}
		if cert.Rows != perTenant {
			t.Fatalf("tenant %s certified %d rows, want %d", id, cert.Rows, perTenant)
		}
	}
	if err := r.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Everything must survive on disk after Close.
	r2, err := tenant.Open(tenantConfig(cfg.Dir))
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer r2.Close()
	if got := len(r2.Tenants()); got != tenants {
		t.Fatalf("recovery scan found %d tenants, want %d", got, tenants)
	}
	for _, id := range ids {
		cert, err := r2.Certificate(id)
		if err != nil {
			t.Fatalf("Certificate(%s) after reopen: %v", id, err)
		}
		if cert.Rows != perTenant {
			t.Fatalf("tenant %s certified %d rows after reopen, want %d", id, cert.Rows, perTenant)
		}
	}
}
