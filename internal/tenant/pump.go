package tenant

import (
	"errors"
	"fmt"
	"time"

	"arams/internal/imgproc"
)

// Append admits one frame for a tenant. Unknown tenants are admitted
// on first contact (subject to MaxTenants); hibernated tenants are
// woken asynchronously — Append itself never waits on a restore, it
// just queues the frame and the dispatcher delivers it once the engine
// is back.
//
// Backpressure is strictly per-tenant: when the tenant's ingress queue
// is at QueueQuota, Append blocks until the dispatcher drains it. A
// producer can therefore only ever be slowed by its own tenant's
// backlog, never by a neighbor's reconcile stall.
func (r *Registry) Append(id string, im *imgproc.Image, tag int) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	en := r.ents[id]
	if en == nil {
		if r.closed {
			return errors.New("tenant: registry closed")
		}
		if err := ValidateID(id); err != nil {
			return err
		}
		if r.cfg.MaxTenants > 0 && len(r.ents) >= r.cfg.MaxTenants {
			return fmt.Errorf("tenant: registry full (%d tenants)", len(r.ents))
		}
		en = r.admitLocked(id, Hibernated)
	}
	for len(en.q) >= r.cfg.QueueQuota {
		if r.closed {
			return errors.New("tenant: registry closed")
		}
		if en.restoreErr != nil {
			return en.restoreErr
		}
		r.cond.Wait()
	}
	if r.closed {
		return errors.New("tenant: registry closed")
	}
	if en.restoreErr != nil {
		return en.restoreErr
	}
	en.q = append(en.q, qframe{im: im, tag: tag})
	en.lastTouch = time.Now()
	// Wake the dispatcher (and anyone draining this tenant).
	r.cond.Broadcast()
	return nil
}

// dispatch is the fair-share pump: one goroutine moving frames from
// every tenant's ingress queue into its engine with a weighted
// deficit-round-robin pass.
//
// Each pass walks the admission ring once. A tenant with queued frames
// earns Quantum×weight deficit (capped at twice that, so an idle
// tenant cannot bank unbounded credit) and hands frames to its engine
// with TryEnqueue — a non-blocking offer that fails when the engine's
// own bounded queue is full. On failure the tenant keeps its place and
// its deficit; the pass simply moves on. The dispatcher therefore
// never blocks on any single engine: a tenant mid-reconcile backs up
// its own ingress queue (eventually blocking only its own producers
// via QueueQuota) while every other tenant keeps streaming.
//
// Hibernated tenants with queued frames get a restore kicked off (the
// restore runs in its own goroutine; the frames wait in the ingress
// queue and flow on a later pass). When every queue is empty the
// dispatcher sleeps on the registry condvar; when work exists but all
// target engines are full it naps briefly instead of spinning.
func (r *Registry) dispatch() {
	defer close(r.dispatcherDone)
	const fullNap = 200 * time.Microsecond
	for {
		r.mu.Lock()
		// Exit once closed and every queue we can still serve is empty
		// (queues stuck behind a failed restore cannot drain; their
		// frames are surfaced via restoreErr, not silently sketched).
		if r.closed && !r.hasDrainableLocked() {
			r.cond.Broadcast()
			r.mu.Unlock()
			return
		}

		moved, blocked := r.passLocked()
		r.maybeEvictLocked()
		if moved > 0 {
			// Progress: producers blocked on quota and Drain waiters
			// may be runnable again.
			r.cond.Broadcast()
			r.mu.Unlock()
			continue
		}
		if blocked {
			// Work exists but every target engine is full or restoring;
			// don't hold the lock while napping.
			r.mu.Unlock()
			time.Sleep(fullNap)
			continue
		}
		if r.closed {
			r.cond.Broadcast()
			r.mu.Unlock()
			return
		}
		r.cond.Wait()
		r.mu.Unlock()
	}
}

// hasDrainableLocked reports whether any tenant still has queued
// frames that a (working) restore or engine could absorb.
func (r *Registry) hasDrainableLocked() bool {
	for _, en := range r.ring {
		if len(en.q) > 0 && en.restoreErr == nil {
			return true
		}
	}
	return false
}

// passLocked runs one deficit-round-robin pass over the ring, moving
// as many frames as deficits and engine queues allow. It returns the
// number of frames moved and whether undeliverable work remains
// (queued frames whose engine was full or whose restore is pending).
// Caller holds the registry mutex; the lock is retained throughout —
// every step (TryEnqueue is a non-blocking channel offer) is cheap.
func (r *Registry) passLocked() (moved int, blocked bool) {
	n := len(r.ring)
	for i := 0; i < n; i++ {
		en := r.ring[(r.next+i)%n]
		if len(en.q) == 0 {
			en.deficit = 0
			continue
		}
		if en.restoreErr != nil {
			continue
		}
		switch en.st {
		case Hibernated:
			r.startRestoreLocked(en)
			blocked = true
			continue
		case Restoring, Hibernating:
			blocked = true
			continue
		}
		// Resident: top up the allowance and deliver.
		quantum := r.cfg.Quantum * r.weight(en.id)
		en.deficit += quantum
		if en.deficit > 2*quantum {
			en.deficit = 2 * quantum
		}
		for len(en.q) > 0 && en.deficit > 0 {
			f := en.q[0]
			if !en.mon.Engine().TryEnqueue(f.im, f.tag) {
				blocked = true
				break
			}
			en.q[0] = qframe{}
			en.q = en.q[1:]
			en.deficit--
			moved++
		}
		if len(en.q) == 0 && cap(en.q) > 4*r.cfg.QueueQuota {
			en.q = nil // return an over-grown backing array
		}
	}
	if n > 0 {
		r.next = (r.next + 1) % n
	}
	return moved, blocked
}

func (r *Registry) weight(id string) int {
	if w := r.cfg.Weights[id]; w > 0 {
		return w
	}
	return 1
}
