package tenant

import (
	"encoding/json"
	"fmt"
	"html/template"
	"net/http"
	"time"

	"arams/internal/audit"
	"arams/internal/obs"
)

// Info is one tenant's reportable state: what /tenantz serves and
// Tenants() returns.
type Info struct {
	ID    string `json:"id"`
	State State  `json:"-"`
	// QueueDepth is the ingress (admission) queue; EngineQueue is the
	// tenant engine's own bounded queue (0 while hibernated).
	QueueDepth  int           `json:"queue_depth"`
	EngineQueue int           `json:"engine_queue"`
	Pins        int           `json:"pins"`
	Ingests     int           `json:"ingests"`
	IdleFor     time.Duration `json:"-"`
	// Certificate is the last certified error bound: live for resident
	// tenants that have cut one, frozen at hibernation otherwise. Nil
	// until the first certificate is cut.
	Certificate *audit.Certificate `json:"certificate,omitempty"`
}

// tenantzInfo is Info with the non-JSON-native fields rendered.
type tenantzInfo struct {
	Info
	StateStr    string  `json:"state"`
	IdleSeconds float64 `json:"idle_seconds"`
}

// tenantzPayload is the JSON document /tenantz?format=json serves.
type tenantzPayload struct {
	Tenants     []tenantzInfo `json:"tenants"`
	Resident    int           `json:"resident"`
	MaxResident int           `json:"max_resident,omitempty"`
}

// Handler serves the registry's tenant table: HTML by default,
// ?format=json for machine consumption, ?format=prom for a Prometheus
// exposition of per-tenant state/queue/residency/certificate series.
// The prom rendering is built on a fresh private obs registry per
// scrape — series come and go with tenants, and rebuilding from the
// live table is how the exposition stays lint-clean by construction.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		infos := r.Tenants()
		switch req.URL.Query().Get("format") {
		case "prom":
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			r.writeProm(w, infos)
		case "json":
			w.Header().Set("Content-Type", "application/json")
			payload := tenantzPayload{Tenants: []tenantzInfo{}, MaxResident: r.cfg.MaxResident}
			for _, inf := range infos {
				if inf.State == Resident || inf.State == Idle || inf.State == Hibernating {
					payload.Resident++
				}
				payload.Tenants = append(payload.Tenants, tenantzInfo{
					Info: inf, StateStr: inf.State.String(),
					IdleSeconds: inf.IdleFor.Seconds(),
				})
			}
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			enc.Encode(payload)
		default:
			w.Header().Set("Content-Type", "text/html; charset=utf-8")
			r.writeHTML(w, infos)
		}
	})
}

// writeProm renders the tenant table as Prometheus text through a
// throwaway obs registry, so naming/label hygiene is enforced by the
// same code path as every other exposition in the process.
func (r *Registry) writeProm(w http.ResponseWriter, infos []Info) {
	reg := obs.NewRegistry()
	resident := 0
	for _, inf := range infos {
		lt := obs.L("tenant", inf.ID)
		reg.Gauge("arams_tenantz_state", lt).SetInt(int(inf.State))
		reg.Gauge("arams_tenantz_queue_depth", lt).SetInt(inf.QueueDepth + inf.EngineQueue)
		reg.Gauge("arams_tenantz_ingests", lt).SetInt(inf.Ingests)
		reg.Gauge("arams_tenantz_pins", lt).SetInt(inf.Pins)
		reg.Gauge("arams_tenantz_idle_seconds", lt).Set(inf.IdleFor.Seconds())
		res := 0.0
		if inf.State == Resident || inf.State == Idle || inf.State == Hibernating {
			res = 1
			resident++
		}
		reg.Gauge("arams_tenantz_resident", lt).Set(res)
		if c := inf.Certificate; c != nil {
			reg.Gauge("arams_tenantz_cov_bound", lt).Set(c.CovBound())
			reg.Gauge("arams_tenantz_cert_rows", lt).SetInt(c.Rows)
		}
	}
	reg.Gauge("arams_tenantz_tenant_count").SetInt(len(infos))
	reg.Gauge("arams_tenantz_resident_count").SetInt(resident)
	if r.cfg.MaxResident > 0 {
		reg.Gauge("arams_tenantz_max_resident").SetInt(r.cfg.MaxResident)
	}
	reg.WritePrometheus(w)
}

var tenantzTmpl = template.Must(template.New("tenantz").Parse(`<!doctype html>
<html><head><title>arams tenants</title><style>
body { font: 14px/1.5 system-ui, sans-serif; margin: 2em; color: #222; }
table { border-collapse: collapse; }
th, td { padding: 4px 12px; border-bottom: 1px solid #ddd; text-align: left; }
th { border-bottom: 2px solid #999; }
td.num { text-align: right; font-variant-numeric: tabular-nums; }
.resident { color: #0a7d33; } .hibernated { color: #888; }
.restoring, .hibernating { color: #b06f00; } .idle { color: #2b6cb0; }
</style></head><body>
<h1>tenants</h1>
<p>{{.Resident}} resident{{if .MaxResident}} / {{.MaxResident}} max{{end}}, {{len .Tenants}} total</p>
<p><a href="?format=prom">prometheus</a> · <a href="?format=json">json</a></p>
<table>
<tr><th>tenant</th><th>state</th><th>ingress q</th><th>engine q</th><th>ingests</th><th>idle</th><th>cov bound</th><th>cert rows</th></tr>
{{range .Tenants}}<tr>
<td>{{.ID}}</td>
<td class="{{.StateStr}}">{{.StateStr}}</td>
<td class="num">{{.QueueDepth}}</td>
<td class="num">{{.EngineQueue}}</td>
<td class="num">{{.Ingests}}</td>
<td class="num">{{printf "%.1fs" .IdleSeconds}}</td>
<td class="num">{{if .Certificate}}{{printf "%.4g" .Certificate.CovBound}}{{else}}—{{end}}</td>
<td class="num">{{if .Certificate}}{{.Certificate.Rows}}{{else}}—{{end}}</td>
</tr>{{end}}
</table>
</body></html>
`))

func (r *Registry) writeHTML(w http.ResponseWriter, infos []Info) {
	payload := tenantzPayload{MaxResident: r.cfg.MaxResident}
	for _, inf := range infos {
		if inf.State == Resident || inf.State == Idle || inf.State == Hibernating {
			payload.Resident++
		}
		payload.Tenants = append(payload.Tenants, tenantzInfo{
			Info: inf, StateStr: inf.State.String(),
			IdleSeconds: inf.IdleFor.Seconds(),
		})
	}
	if err := tenantzTmpl.Execute(w, payload); err != nil {
		fmt.Fprintf(w, "<!-- render: %v -->", err)
	}
}
