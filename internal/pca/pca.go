// Package pca projects data onto the latent space spanned by a matrix
// sketch's right singular vectors — the dimensionality-reduction stage
// between sketching and UMAP in the paper's pipeline (Fig. 4).
package pca

import (
	"fmt"

	"arams/internal/mat"
)

// Projector maps d-dimensional rows into a k-dimensional latent space
// defined by a basis of orthonormal rows (k×d), typically
// FrequentDirections.Basis(k).
type Projector struct {
	basis *mat.Matrix // k×d
}

// NewProjector wraps a k×d basis with orthonormal rows.
func NewProjector(basis *mat.Matrix) *Projector {
	if basis.RowsN == 0 {
		panic("pca: empty basis")
	}
	return &Projector{basis: basis}
}

// K returns the latent dimensionality.
func (p *Projector) K() int { return p.basis.RowsN }

// Dim returns the input dimensionality.
func (p *Projector) Dim() int { return p.basis.ColsN }

// Basis returns the underlying basis (not a copy).
func (p *Projector) Basis() *mat.Matrix { return p.basis }

// ProjectRow maps one d-vector to its k-dimensional latent coordinates.
func (p *Projector) ProjectRow(row []float64) []float64 {
	if len(row) != p.basis.ColsN {
		panic(fmt.Sprintf("pca: row length %d != %d", len(row), p.basis.ColsN))
	}
	return mat.MulVec(p.basis, row)
}

// Project maps every row of x into latent space, returning an n×k
// matrix.
func (p *Projector) Project(x *mat.Matrix) *mat.Matrix {
	if x.ColsN != p.basis.ColsN {
		panic("pca: Project dimension mismatch")
	}
	return mat.MulABt(x, p.basis)
}

// ProjectInto is Project writing into caller-owned dst (n×k), so a
// live monitor can project every refresh into the same buffer without
// allocating. dst must not alias x.
func (p *Projector) ProjectInto(dst, x *mat.Matrix) {
	if x.ColsN != p.basis.ColsN {
		panic("pca: Project dimension mismatch")
	}
	mat.MulABtTo(dst, x, p.basis)
}

// Reconstruct maps latent coordinates back to the original space:
// x̂ = z·V for latent rows z (n×k).
func (p *Projector) Reconstruct(z *mat.Matrix) *mat.Matrix {
	if z.ColsN != p.basis.RowsN {
		panic("pca: Reconstruct dimension mismatch")
	}
	return mat.Mul(z, p.basis)
}

// ExplainedVariance returns, for each latent component, the fraction of
// the data's total variance captured, computed from the projection of
// x. The fractions are in component order and sum to at most 1.
func (p *Projector) ExplainedVariance(x *mat.Matrix) []float64 {
	z := p.Project(x)
	total := x.FrobeniusNormSq()
	out := make([]float64, p.K())
	if total == 0 {
		return out
	}
	for j := 0; j < z.ColsN; j++ {
		var s float64
		for i := 0; i < z.RowsN; i++ {
			v := z.At(i, j)
			s += v * v
		}
		out[j] = s / total
	}
	return out
}
