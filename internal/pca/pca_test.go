package pca

import (
	"math"
	"testing"

	"arams/internal/mat"
	"arams/internal/rng"
	"arams/internal/sketch"
	"arams/internal/synth"
)

func TestProjectShapes(t *testing.T) {
	g := rng.New(1)
	x := mat.RandGaussian(20, 10, g)
	basis := mat.RandOrthonormalCols(10, 3, g).T() // 3×10 orthonormal rows
	p := NewProjector(basis)
	z := p.Project(x)
	if r, c := z.Dims(); r != 20 || c != 3 {
		t.Fatalf("Project shape %d×%d", r, c)
	}
	if p.K() != 3 || p.Dim() != 10 {
		t.Fatalf("K=%d Dim=%d", p.K(), p.Dim())
	}
}

func TestProjectRowMatchesProject(t *testing.T) {
	g := rng.New(2)
	x := mat.RandGaussian(5, 8, g)
	basis := mat.RandOrthonormalCols(8, 2, g).T()
	p := NewProjector(basis)
	z := p.Project(x)
	for i := 0; i < 5; i++ {
		zi := p.ProjectRow(x.Row(i))
		for j := range zi {
			if math.Abs(zi[j]-z.At(i, j)) > 1e-12 {
				t.Fatalf("row %d mismatch", i)
			}
		}
	}
}

func TestProjectReconstructRoundtrip(t *testing.T) {
	// Data in the basis's row space reconstructs exactly.
	ds := synth.Generate(synth.Params{N: 30, D: 20, Rank: 4, Decay: synth.Exponential, Seed: 3})
	basis := ds.V.T() // 4×20
	p := NewProjector(basis)
	z := p.Project(ds.A)
	xh := p.Reconstruct(z)
	if !xh.Equal(ds.A, 1e-9) {
		t.Fatal("in-subspace data did not roundtrip")
	}
}

func TestExplainedVariance(t *testing.T) {
	ds := synth.Generate(synth.Params{N: 50, D: 25, Rank: 5, Decay: synth.Exponential, Seed: 4})
	fd := sketch.NewFrequentDirections(10, 25, sketch.Options{})
	fd.AppendMatrix(ds.A)
	p := NewProjector(fd.Basis(5))
	ev := p.ExplainedVariance(ds.A)
	if len(ev) != 5 {
		t.Fatalf("got %d fractions", len(ev))
	}
	var total float64
	for i, f := range ev {
		if f < 0 || f > 1 {
			t.Fatalf("fraction %d = %v out of range", i, f)
		}
		if i > 0 && f > ev[i-1]+1e-9 {
			t.Fatalf("explained variance not descending: %v", ev)
		}
		total += f
	}
	// Rank-5 data with a 5-vector basis captures nearly everything.
	if total < 0.999 {
		t.Fatalf("total explained variance %v, want ~1", total)
	}
}

func TestExplainedVarianceZeroData(t *testing.T) {
	g := rng.New(5)
	basis := mat.RandOrthonormalCols(6, 2, g).T()
	p := NewProjector(basis)
	ev := p.ExplainedVariance(mat.New(4, 6))
	for _, f := range ev {
		if f != 0 {
			t.Fatalf("zero data explained variance %v", ev)
		}
	}
}

func TestProjectorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty basis did not panic")
		}
	}()
	NewProjector(mat.New(0, 5))
}

func TestProjectDimMismatchPanics(t *testing.T) {
	g := rng.New(6)
	p := NewProjector(mat.RandOrthonormalCols(8, 2, g).T())
	defer func() {
		if recover() == nil {
			t.Fatal("dimension mismatch did not panic")
		}
	}()
	p.Project(mat.New(3, 9))
}

func TestProjectIntoMatchesProject(t *testing.T) {
	g := rng.New(31)
	x := mat.RandGaussian(40, 25, g)
	basis := mat.RandOrthonormalCols(25, 6, g).T()
	p := NewProjector(basis)
	want := p.Project(x)
	dst := mat.New(40, 6)
	// Pre-fill with garbage: ProjectInto must fully overwrite dst.
	for i := range dst.Data {
		dst.Data[i] = math.NaN()
	}
	p.ProjectInto(dst, x)
	if !dst.Equal(want, 1e-12) {
		t.Fatal("ProjectInto disagrees with Project")
	}
}
