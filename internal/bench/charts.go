package bench

import (
	"fmt"
	"strconv"

	"arams/internal/viz"
)

// Chart converters: turn experiment tables into the interactive HTML
// figures the paper presents — semilog error/runtime frontiers for
// Fig. 1, log-log scaling curves for Figs. 2 and 3, and decay curves
// for the ablations. aramsbench -htmldir writes one file per chart.

func cell(t *Table, row, col int) float64 {
	v, err := strconv.ParseFloat(t.Rows[row][col], 64)
	if err != nil {
		// Tables format through formatFloat, which Sscan-compatible
		// strconv handles; non-numeric cells are a programming error.
		panic(fmt.Sprintf("bench: non-numeric cell %q in %s", t.Rows[row][col], t.Title))
	}
	return v
}

// ChartFig1SV converts the singular-value table into a semilog-y chart.
func ChartFig1SV(t *Table) *viz.Chart {
	c := &viz.Chart{
		Title: t.Title, XLabel: "index", YLabel: "singular value", LogY: true,
	}
	for col := 1; col <= 3; col++ {
		var xs, ys []float64
		for r := range t.Rows {
			xs = append(xs, cell(t, r, 0))
			ys = append(ys, cell(t, r, col))
		}
		c.AddSeries(t.Header[col], xs, ys)
	}
	return c
}

// ChartFig1 converts one error-vs-runtime panel into a semilog-y chart
// with one series per algorithm variant (columns: variant, param,
// ell_final, runtime_ms, rel_proj_err).
func ChartFig1(t *Table) *viz.Chart {
	c := &viz.Chart{
		Title: t.Title, XLabel: "runtime (ms)", YLabel: "relative projection error", LogY: true,
	}
	series := map[string][2][]float64{}
	var order []string
	for r := range t.Rows {
		name := t.Rows[r][0]
		s, ok := series[name]
		if !ok {
			order = append(order, name)
		}
		s[0] = append(s[0], cell(t, r, 3))
		s[1] = append(s[1], cell(t, r, 4))
		series[name] = s
	}
	for _, name := range order {
		c.AddSeries(name, series[name][0], series[name][1])
	}
	return c
}

// ChartFig2 converts the strong-scaling table into a log-log
// critical-path runtime chart (columns: cores, strategy, work_ms,
// critpath_ms, ...).
func ChartFig2(t *Table) *viz.Chart {
	c := &viz.Chart{
		Title: t.Title, XLabel: "cores", YLabel: "critical-path runtime (ms)",
		LogX: true, LogY: true,
	}
	series := map[string][2][]float64{}
	var order []string
	for r := range t.Rows {
		name := t.Rows[r][1]
		s, ok := series[name]
		if !ok {
			order = append(order, name)
		}
		s[0] = append(s[0], cell(t, r, 0))
		s[1] = append(s[1], cell(t, r, 3))
		series[name] = s
	}
	for _, name := range order {
		c.AddSeries(name, series[name][0], series[name][1])
	}
	return c
}

// ChartFig3 converts the error-vs-cores table into a log-log chart
// (columns: cores, tree_rel_err, serial_rel_err, ratio).
func ChartFig3(t *Table) *viz.Chart {
	c := &viz.Chart{
		Title: t.Title, XLabel: "cores", YLabel: "relative projection error",
		LogX: true, LogY: true,
	}
	for _, sc := range []struct {
		col  int
		name string
	}{{1, "tree-merge"}, {2, "serial-merge"}} {
		var xs, ys []float64
		for r := range t.Rows {
			xs = append(xs, cell(t, r, 0))
			ys = append(ys, cell(t, r, sc.col))
		}
		c.AddSeries(sc.name, xs, ys)
	}
	return c
}

// ChartXYColumns builds a generic chart plotting column ycol against
// column xcol (used for the probe/beta/estimator ablation curves).
func ChartXYColumns(t *Table, xcol, ycol int, logY bool) *viz.Chart {
	c := &viz.Chart{
		Title: t.Title, XLabel: t.Header[xcol], YLabel: t.Header[ycol], LogY: logY,
	}
	var xs, ys []float64
	for r := range t.Rows {
		xs = append(xs, cell(t, r, xcol))
		ys = append(ys, cell(t, r, ycol))
	}
	c.AddSeries(t.Header[ycol], xs, ys)
	return c
}
