// Package bench implements the experiment harness that regenerates
// every table and figure of the paper's evaluation: the Fig. 1 ablation
// (error/runtime trade-off of the four FD variants over three
// singular-value decay profiles), the Fig. 2/3 strong-scaling and
// error-vs-cores studies of tree versus serial merging, the Fig. 5/6
// embedding experiments on simulated beam-profile and diffraction data,
// the §VI-B throughput run, and the supplementary ablations (probe
// count, sampling fraction β, SVD backend).
//
// Each experiment returns Tables — printable series with one row per
// measured point — so the same code backs both the aramsbench CLI and
// the testing.B benchmarks at the repository root.
package bench

import (
	"fmt"
	"io"
	"strings"
	"text/tabwriter"
)

// Table is one printable result series.
type Table struct {
	Title  string
	Note   string // interpretation hint: what shape to expect
	Header []string
	Rows   [][]string
}

// Append adds a row of stringified cells.
func (t *Table) Append(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

func formatFloat(v float64) string {
	av := v
	if av < 0 {
		av = -av
	}
	switch {
	case v == 0:
		return "0"
	case av >= 1e5 || av < 1e-3:
		return fmt.Sprintf("%.3e", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}

// Print renders the table with aligned columns.
func (t *Table) Print(w io.Writer) {
	fmt.Fprintf(w, "\n== %s ==\n", t.Title)
	if t.Note != "" {
		fmt.Fprintf(w, "   %s\n", t.Note)
	}
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, strings.Join(t.Header, "\t"))
	for _, r := range t.Rows {
		fmt.Fprintln(tw, strings.Join(r, "\t"))
	}
	tw.Flush()
}

// CSV renders the table as comma-separated values (header first).
func (t *Table) CSV(w io.Writer) {
	fmt.Fprintln(w, strings.Join(t.Header, ","))
	for _, r := range t.Rows {
		fmt.Fprintln(w, strings.Join(r, ","))
	}
}
