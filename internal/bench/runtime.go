package bench

import (
	"runtime"
	"time"

	"arams/internal/imgproc"
	"arams/internal/lcls"
	"arams/internal/mat"
	"arams/internal/parallel"
	"arams/internal/pipeline"
	"arams/internal/sketch"
	"arams/internal/umap"
)

// RuntimeParams sizes the §VI-B throughput experiment. The paper
// processes 120,000 2-megapixel images at 136 Hz on 64 cores; the
// defaults scale frame size and count down while reporting the same
// quantities (achieved Hz vs the 120 Hz detector rate, visualization
// time under a minute).
type RuntimeParams struct {
	Frames   int
	ImgSize  int   // frame side before cropping
	CropSize int   // analysis region, as the paper crops before sketching
	Workers  []int // worker counts to sweep
	Seed     uint64
}

// DefaultRuntime returns laptop-scale parameters.
func DefaultRuntime() RuntimeParams {
	max := runtime.GOMAXPROCS(0)
	workers := []int{1}
	for c := 2; c <= max; c *= 2 {
		workers = append(workers, c)
	}
	return RuntimeParams{Frames: 1200, ImgSize: 96, CropSize: 64, Workers: workers, Seed: 4}
}

// FullRuntime approaches the paper's frame count (long).
func FullRuntime() RuntimeParams {
	p := DefaultRuntime()
	p.Frames = 12000
	p.ImgSize, p.CropSize = 192, 128
	return p
}

// RuntimeStudy reproduces §VI-B: end-to-end throughput of the
// preprocess+sketch stages versus worker count, plus the one-shot
// visualization (UMAP+OPTICS) latency for the final window.
func RuntimeStudy(p RuntimeParams) *Table {
	t := &Table{
		Title: "§VI-B: online throughput (paper: 136 Hz on 64 cores vs 120 Hz detector rate)",
		Note: "expect: achieved Hz grows with workers and exceeds the simulated " +
			"120 Hz detector rate; visualization latency well under a minute",
		Header: []string{"workers", "frames", "sketch_Hz", "x_detector_rate",
			"viz_ms", "total_ms"},
	}
	bg := lcls.NewBeamGenerator(lcls.BeamConfig{Size: p.ImgSize, Seed: p.Seed})
	frames := bg.Generate(p.Frames)
	pre := imgproc.Preprocessor{ThresholdFrac: 0.02, Normalize: true}
	// Preprocess+crop once per worker config to include it in the
	// timed path, as the paper's 136 Hz covers the full data pass.
	for _, workers := range p.Workers {
		start := time.Now()
		vecs := mat.New(p.Frames, p.CropSize*p.CropSize)
		preprocessParallel(frames, vecs, pre, p.CropSize, workers)
		shards := parallel.SplitRows(vecs, workers)
		sketcher := func(shard *mat.Matrix) *sketch.FrequentDirections {
			a := sketch.NewARAMS(sketch.Config{Ell0: 30, Beta: 0.85, Seed: p.Seed}, shard.ColsN, shard.RowsN)
			a.ProcessBatch(shard)
			return a.FD()
		}
		global, _ := parallel.Run(shards, sketcher, parallel.TreeMerge)
		sketchElapsed := time.Since(start)

		// Visualization latency over the last window of frames.
		vizStart := time.Now()
		window := vecs
		if vecs.RowsN > 600 {
			window = vecs.Rows(vecs.RowsN-600, vecs.RowsN)
		}
		basis := global.Basis(12)
		res := pipeline.ProcessMatrixWithBasis(window, basis, pipeline.Config{
			UMAP: umap.Config{NNeighbors: 15, NEpochs: 150, Seed: p.Seed},
		})
		_ = res
		vizElapsed := time.Since(vizStart)

		hz := float64(p.Frames) / sketchElapsed.Seconds()
		t.Append(workers, p.Frames, hz, hz/120.0,
			float64(vizElapsed.Microseconds())/1000,
			float64((sketchElapsed+vizElapsed).Microseconds())/1000)
	}
	return t
}

// preprocessParallel applies the preprocessing chain and center-crop to
// every frame across the given number of goroutines.
func preprocessParallel(frames []lcls.BeamFrame, dst *mat.Matrix, pre imgproc.Preprocessor, crop, workers int) {
	type job struct{ lo, hi int }
	jobs := make(chan job, workers)
	done := make(chan struct{}, workers)
	chunk := (len(frames) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		go func() {
			for j := range jobs {
				for i := j.lo; i < j.hi; i++ {
					im := pre.Apply(frames[i].Image).CropCenter(crop, crop)
					copy(dst.Row(i), im.Flatten())
				}
			}
			done <- struct{}{}
		}()
	}
	for lo := 0; lo < len(frames); lo += chunk {
		hi := lo + chunk
		if hi > len(frames) {
			hi = len(frames)
		}
		jobs <- job{lo, hi}
	}
	close(jobs)
	for w := 0; w < workers; w++ {
		<-done
	}
}
