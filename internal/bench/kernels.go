package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"testing"

	"arams/internal/mat"
	"arams/internal/rng"
)

// Kernel microbenchmarks: every entry times the pre-PR reference
// kernel (kept verbatim in internal/mat/reference.go) against the
// cache-blocked replacement on the same input, so BENCH_kernels.json
// records the speedup of the execution-layer rewrite on the shapes the
// FD hot path actually runs — 2ℓ×d rotation buffers with d ≫ 2ℓ.

// KernelResult is one reference-vs-blocked comparison.
type KernelResult struct {
	Kernel      string  `json:"kernel"`
	Shape       string  `json:"shape"`
	RefNsOp     int64   `json:"ref_ns_op"`
	NewNsOp     int64   `json:"new_ns_op"`
	Speedup     float64 `json:"speedup"`
	NewAllocsOp int64   `json:"new_allocs_op"`
	NewBytesOp  int64   `json:"new_bytes_op"`
}

// KernelReport is the full sweep, serialized to BENCH_kernels.json.
// NumCPU and GoMaxProcs record the host parallelism at measurement
// time: the blocked kernels fan out over the mat worker pool, so their
// speedups are only reproducible on hosts with at least as many cores.
type KernelReport struct {
	PoolWorkers int            `json:"pool_workers"`
	NumCPU      int            `json:"num_cpu"`
	GoMaxProcs  int            `json:"gomaxprocs"`
	Results     []KernelResult `json:"results"`
}

// WriteJSON serializes the report with stable indentation.
func (r *KernelReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// bench runs fn under the testing harness and returns its result.
func benchKernel(fn func()) testing.BenchmarkResult {
	return testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			fn()
		}
	})
}

func kernelEntry(kernel, shape string, ref, blocked func()) KernelResult {
	rr := benchKernel(ref)
	nr := benchKernel(blocked)
	speedup := 0.0
	if nr.NsPerOp() > 0 {
		speedup = float64(rr.NsPerOp()) / float64(nr.NsPerOp())
	}
	return KernelResult{
		Kernel:      kernel,
		Shape:       shape,
		RefNsOp:     rr.NsPerOp(),
		NewNsOp:     nr.NsPerOp(),
		Speedup:     speedup,
		NewAllocsOp: nr.AllocsPerOp(),
		NewBytesOp:  nr.AllocedBytesPerOp(),
	}
}

// KernelSweep times the reference and blocked kernels on FD-relevant
// shapes. quick restricts the sweep to two entries for the CI smoke
// job; the full sweep backs the checked-in BENCH_kernels.json.
func KernelSweep(seed uint64, quick bool) (*KernelReport, *Table) {
	g := rng.New(seed)
	report := &KernelReport{
		PoolWorkers: mat.Workers(),
		NumCPU:      runtime.NumCPU(),
		GoMaxProcs:  runtime.GOMAXPROCS(0),
	}

	gramShapes := [][2]int{{64, 4096}, {128, 4096}, {64, 16384}}
	if quick {
		gramShapes = [][2]int{{64, 2048}}
	}
	for _, sh := range gramShapes {
		m, d := sh[0], sh[1]
		a := mat.RandGaussian(m, d, g)
		out := mat.New(m, m)
		report.Results = append(report.Results, kernelEntry(
			"gram", fmt.Sprintf("%dx%d", m, d),
			func() { _ = mat.RefGram(a) },
			func() { mat.GramTo(out, a) },
		))
	}

	svdShapes := [][2]int{{64, 4096}}
	if quick {
		svdShapes = [][2]int{{64, 2048}}
	}
	for _, sh := range svdShapes {
		m, d := sh[0], sh[1]
		a := mat.RandGaussian(m, d, g)
		sigma := make([]float64, m)
		vt := mat.New(m, d)
		report.Results = append(report.Results, kernelEntry(
			"svdgram", fmt.Sprintf("%dx%d", m, d),
			func() { _, _, _ = mat.RefSVDGram(a) },
			func() { sigma = mat.SVDGramTo(a, sigma, vt) },
		))
	}

	if !quick {
		// The PCA projection shape (window×d · basisᵀ) and the Vᵀ
		// rebuild inside the rotation (m×m · m×d).
		x := mat.RandGaussian(1024, 4096, g)
		basis := mat.RandGaussian(20, 4096, g)
		dst := mat.New(1024, 20)
		report.Results = append(report.Results, kernelEntry(
			"mulabt", "1024x4096x20",
			func() { _ = mat.RefMulABt(x, basis) },
			func() { mat.MulABtTo(dst, x, basis) },
		))

		coef := mat.RandGaussian(64, 64, g)
		wide := mat.RandGaussian(64, 4096, g)
		prod := mat.New(64, 4096)
		ref := mat.New(64, 4096)
		report.Results = append(report.Results, kernelEntry(
			"mul", "64x64x4096",
			func() { mat.RefMulTo(ref, coef, wide) },
			func() { mat.MulTo(prod, coef, wide) },
		))
	}

	t := &Table{
		Title: "Kernel microbenchmarks: reference vs cache-blocked",
		Note: "speedup = ref/new wall time per op; the svdgram row is the FD " +
			"rotation hot path and must show 0 allocs/op",
		Header: []string{"kernel", "shape", "ref ns/op", "new ns/op", "speedup", "allocs/op", "B/op"},
	}
	for _, r := range report.Results {
		t.Append(r.Kernel, r.Shape, r.RefNsOp, r.NewNsOp, r.Speedup, r.NewAllocsOp, r.NewBytesOp)
	}
	return report, t
}
