package bench

import (
	"math"

	"arams/internal/imgproc"
	"arams/internal/lcls"
	"arams/internal/mat"
	"arams/internal/optics"
	"arams/internal/pipeline"
	"arams/internal/sketch"
	"arams/internal/stats"
	"arams/internal/umap"
)

// EmbedParams sizes the Fig. 5/6 embedding experiments.
type EmbedParams struct {
	Frames  int // shots per run
	ImgSize int // detector frame side, pixels
	Workers int
	Seed    uint64
}

// DefaultEmbed returns laptop-scale parameters.
func DefaultEmbed() EmbedParams {
	return EmbedParams{Frames: 400, ImgSize: 48, Workers: 4, Seed: 3}
}

// Fig5BeamProfile reproduces the Fig. 5 experiment: beam profiles pass
// through the full pipeline and the resulting 2-D embedding is
// validated against the generators' latent factors. The paper reports
// (visually) that one axis organizes lateral center-of-mass weight and
// the other circularity; here that becomes measurable correlations.
func Fig5BeamProfile(p EmbedParams) []*Table {
	bg := lcls.NewBeamGenerator(lcls.BeamConfig{
		Size: p.ImgSize, ExoticFrac: 0.03, Seed: p.Seed,
	})
	frames := bg.Generate(p.Frames)
	imgs := make([]*imgproc.Image, len(frames))
	for i, f := range frames {
		imgs[i] = f.Image
	}
	cfg := pipeline.Config{
		Pre:       imgproc.Preprocessor{ThresholdFrac: 0.02, Normalize: true},
		Sketch:    sketch.Config{Ell0: 25, Beta: 0.9, Seed: p.Seed},
		Workers:   p.Workers,
		LatentDim: 12,
		UMAP:      umap.Config{NNeighbors: 15, NEpochs: 200, Seed: p.Seed + 1},
	}
	res := pipeline.Process(imgs, cfg)

	// Correlate each embedding axis with each generative factor.
	n := len(frames)
	offX := make([]float64, n)
	circ := make([]float64, n)
	var exotics []int
	for i, f := range frames {
		offX[i] = f.Params.CenterX
		circ[i] = f.Params.Circularity()
		if f.Params.Exotic {
			exotics = append(exotics, i)
		}
	}
	ax0 := column(res.Embedding, 0)
	ax1 := column(res.Embedding, 1)

	t := &Table{
		Title: "Fig.5: beam-profile embedding — axis/factor correlations",
		Note: "expect: the two embedding axes align with lateral COM offset and " +
			"circularity (|corr| high for one pairing per factor)",
		Header: []string{"factor", "|corr(axis0)|", "|corr(axis1)|", "best_axis"},
	}
	for _, f := range []struct {
		name string
		vals []float64
	}{{"com_offset_x", offX}, {"circularity", circ}} {
		c0 := math.Abs(stats.Pearson(ax0, f.vals))
		c1 := math.Abs(stats.Pearson(ax1, f.vals))
		best := 0
		if c1 > c0 {
			best = 1
		}
		t.Append(f.name, c0, c1, best)
	}

	// Global organization: Spearman rank correlation between pairwise
	// factor distance and pairwise embedding distance. UMAP axes are
	// arbitrary rotations, so the pairwise statistic is the robust
	// check that the embedding is organized by the physical factors.
	var fd, ed []float64
	for i := 0; i < n; i += 3 {
		for j := i + 1; j < n; j += 17 {
			df := math.Abs(offX[i]-offX[j]) + 10*math.Abs(circ[i]-circ[j])
			de := math.Hypot(res.Embedding.At(i, 0)-res.Embedding.At(j, 0),
				res.Embedding.At(i, 1)-res.Embedding.At(j, 1))
			fd = append(fd, df)
			ed = append(ed, de)
		}
	}
	t.Append("pairwise factor-dist (Spearman ρ)", stats.Spearman(fd, ed), "", "-")

	// Exotic shots: residual-based separation statistics.
	t2 := &Table{
		Title: "Fig.5 (cont.): exotic-profile separation",
		Note: "expect: exotic shots have reconstruction residuals far above the " +
			"median shot and rank at the top of the anomaly ordering",
		Header: []string{"exotic_frames", "median_residual", "min_exotic_residual",
			"ratio", "exotics_in_top5%"},
	}
	med := stats.Median(res.Residuals)
	minExotic := math.Inf(1)
	for _, i := range exotics {
		if res.Residuals[i] < minExotic {
			minExotic = res.Residuals[i]
		}
	}
	topSet := map[int]bool{}
	for _, i := range res.ResidualOutliers {
		topSet[i] = true
	}
	inTop := 0
	for _, i := range exotics {
		if topSet[i] {
			inTop++
		}
	}
	ratio := 0.0
	if med > 0 && len(exotics) > 0 {
		ratio = minExotic / med
	}
	t2.Append(len(exotics), med, minExotic, ratio, inTop)
	return []*Table{t, t2}
}

// Fig6Diffraction reproduces the Fig. 6 experiment: quadrant-weighted
// diffraction rings pass through the pipeline; the discovered clusters
// are scored against the generator's class labels.
func Fig6Diffraction(p EmbedParams) *Table {
	dg := lcls.NewDiffractionGenerator(lcls.DiffractionConfig{
		Size: p.ImgSize, Seed: p.Seed,
	})
	frames, truth := dg.Generate(p.Frames)
	imgs := make([]*imgproc.Image, len(frames))
	for i, f := range frames {
		imgs[i] = f.Image
	}
	cfg := pipeline.Config{
		Pre:       imgproc.Preprocessor{Normalize: true},
		Sketch:    sketch.Config{Ell0: 25, Beta: 0.9, Seed: p.Seed},
		Workers:   p.Workers,
		LatentDim: 12,
		UMAP:      umap.Config{NNeighbors: 20, NEpochs: 200, Seed: p.Seed + 1},
	}
	res := pipeline.Process(imgs, cfg)

	purity, clustered := purityOf(res.Labels, truth)
	t := &Table{
		Title: "Fig.6: diffraction embedding — cluster recovery of quadrant classes",
		Note: "expect: clear clusters, each dominated by one quadrant-weight class " +
			"(high purity), cluster count near the class count",
		Header: []string{"true_classes", "found_clusters", "clustered_frac",
			"purity", "ARI"},
	}
	t.Append(dg.NumClasses(), optics.NumClusters(res.Labels),
		float64(clustered)/float64(len(truth)), purity,
		optics.ARI(res.Labels, truth))
	return t
}

func column(m *mat.Matrix, j int) []float64 {
	out := make([]float64, m.RowsN)
	for i := 0; i < m.RowsN; i++ {
		out[i] = m.At(i, j)
	}
	return out
}

// spearmanCorr computes the Spearman rank correlation of two sequences.

func purityOf(labels, truth []int) (float64, int) {
	counts := map[int]map[int]int{}
	clustered := 0
	for i, l := range labels {
		if l == optics.Noise {
			continue
		}
		if counts[l] == nil {
			counts[l] = map[int]int{}
		}
		counts[l][truth[i]]++
		clustered++
	}
	if clustered == 0 {
		return 0, 0
	}
	pure := 0
	for _, cc := range counts {
		best := 0
		for _, c := range cc {
			if c > best {
				best = c
			}
		}
		pure += best
	}
	return float64(pure) / float64(clustered), clustered
}
