package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"testing"

	"arams/internal/engine"
	"arams/internal/mat"
	"arams/internal/rng"
	"arams/internal/sketch"
)

// Sharded-ingest benchmark: times the streaming engine end to end
// (routing, per-shard FD absorption, window bookkeeping) at shard
// counts {1, 2, 4, 8} on one synthetic stream, so BENCH_ingest.json
// records how ingest throughput scales when the sketch is split across
// concurrent shards. Shard absorption is the parallel section; the
// speedup column is therefore bounded by the cores the host exposes —
// num_cpu in the report says what that bound was when the numbers were
// taken.

// IngestResult is one shard-count measurement. Speedup is measured
// wall clock and therefore bounded by the host's cores;
// ProjectedSpeedup is the critical-path speedup of the sketch section
// for a host with one core per shard: each shard's round-robin subset
// is replayed standalone (no interleaving, no scheduler noise) and the
// busiest shard's replay time is compared against the whole stream
// replayed through one sketcher. Round-robin keeps the subsets
// balanced, so this approaches the shard count until per-rotation cost
// stops amortizing.
type IngestResult struct {
	Shards           int     `json:"shards"`
	Frames           int     `json:"frames"`
	Dim              int     `json:"dim"`
	BatchSize        int     `json:"batch_size"`
	NsPerFrame       int64   `json:"ns_per_frame"`
	FramesPerSec     float64 `json:"frames_per_sec"`
	Speedup          float64 `json:"speedup_vs_serial"`
	ProjectedSpeedup float64 `json:"projected_speedup_full_cores"`
	// Projected marks rows measured on a host with fewer cores than
	// shards: the wall-clock Speedup column there says nothing about
	// shard scaling (the shards time-sliced one another), and only
	// ProjectedSpeedup — built from standalone per-shard replays — is
	// an honest scaling estimate.
	Projected bool    `json:"speedup_projected"`
	CertBound float64 `json:"cert_cov_bound"`
	GlobalEll int     `json:"global_ell"`
}

// IngestReport is the full sweep, serialized to BENCH_ingest.json.
// NumCPU and GoMaxProcs record the parallelism the host actually
// offered when the numbers were taken, so a reader can tell measured
// speedups from time-sliced ones.
type IngestReport struct {
	NumCPU     int            `json:"num_cpu"`
	GoMaxProcs int            `json:"gomaxprocs"`
	Results    []IngestResult `json:"results"`
}

// WriteJSON serializes the report with stable indentation.
func (r *IngestReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// ingestRun streams every frame through a fresh engine and returns it.
// The engine takes ownership of ingested vectors, so each run feeds
// from its own copy.
func ingestRun(cfg engine.Config, vecs [][]float64, batch int) *engine.Engine {
	e := engine.New(cfg)
	tags := make([]int, batch)
	for base := 0; base < len(vecs); base += batch {
		hi := base + batch
		if hi > len(vecs) {
			hi = len(vecs)
		}
		chunk := make([][]float64, hi-base)
		for i := range chunk {
			chunk[i] = append([]float64(nil), vecs[base+i]...)
			tags[i] = base + i
		}
		e.IngestVecs(chunk, tags[:len(chunk)])
	}
	return e
}

// replayNs times one shard's stream through a standalone sketcher —
// exactly the absorb work a dedicated core would run, with nothing
// else scheduled on top of it.
func replayNs(cfg sketch.Config, rows [][]float64) int64 {
	d := len(rows[0])
	br := testing.Benchmark(func(b *testing.B) {
		for n := 0; n < b.N; n++ {
			a := sketch.NewARAMS(cfg, d, 0)
			for _, v := range rows {
				a.ProcessBatch(mat.FromData(1, d, append([]float64(nil), v...)))
			}
		}
	})
	return br.NsPerOp()
}

// IngestSweep measures ingest throughput at shard counts {1, 2, 4, 8}
// on one low-rank-plus-noise stream. quick restricts the sweep to
// {1, 4} at reduced shape for the CI smoke job; the full sweep backs
// the checked-in BENCH_ingest.json.
func IngestSweep(seed uint64, quick bool) (*IngestReport, *Table) {
	shardCounts := []int{1, 2, 4, 8}
	frames, d, ell0, batch := 768, 1024, 16, 32
	if quick {
		shardCounts = []int{1, 4}
		frames, d, ell0, batch = 192, 256, 8, 32
	}

	// Rank-8 signal plus noise, the same stream for every shard count.
	g := rng.New(seed)
	const rank = 8
	basis := make([][]float64, rank)
	for r := range basis {
		basis[r] = make([]float64, d)
		for j := range basis[r] {
			basis[r][j] = g.Norm()
		}
	}
	vecs := make([][]float64, frames)
	for i := range vecs {
		v := make([]float64, d)
		for r := 0; r < rank; r++ {
			w := g.Norm() * float64(rank-r)
			for j := range v {
				v[j] += w * basis[r][j]
			}
		}
		for j := range v {
			v[j] += 0.1 * g.Norm()
		}
		vecs[i] = v
	}

	report := &IngestReport{NumCPU: runtime.NumCPU(), GoMaxProcs: runtime.GOMAXPROCS(0)}
	var serialNs, serialReplay int64
	for _, s := range shardCounts {
		cfg := engine.Config{
			Shards:    s,
			Window:    64,
			BatchSize: batch,
			Sketch:    sketch.Config{Ell0: ell0, Beta: 1, Seed: seed},
		}
		br := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ingestRun(cfg, vecs, batch)
			}
		})
		nsFrame := br.NsPerOp() / int64(frames)
		if nsFrame <= 0 {
			nsFrame = 1
		}
		if s == 1 {
			serialNs = nsFrame
		}
		// Critical path: replay each shard's round-robin subset through
		// a standalone sketcher, serially, so no replay is timed with
		// another one scheduled on top of it. The busiest shard bounds
		// sharded wall time on a one-core-per-shard host.
		var maxReplay int64
		for i := 0; i < s; i++ {
			var rows [][]float64
			for j := i; j < frames; j += s {
				rows = append(rows, vecs[j])
			}
			if r := replayNs(engine.ShardSketchConfig(cfg.Sketch, i), rows); r > maxReplay {
				maxReplay = r
			}
		}
		if s == 1 {
			serialReplay = maxReplay
		}
		// One untimed run for the quality columns: the certificate must
		// stay valid at every shard count, and the merged rank never
		// exceeds the per-shard maximum.
		e := ingestRun(cfg, vecs, batch)
		report.Results = append(report.Results, IngestResult{
			Shards:           s,
			Frames:           frames,
			Dim:              d,
			BatchSize:        batch,
			NsPerFrame:       nsFrame,
			FramesPerSec:     1e9 / float64(nsFrame),
			Speedup:          float64(serialNs) / float64(nsFrame),
			ProjectedSpeedup: float64(serialReplay) / float64(maxReplay),
			Projected:        s > report.NumCPU,
			CertBound:        e.Certificate().CovBound(),
			GlobalEll:        e.Ell(),
		})
	}

	t := &Table{
		Title: "Streaming ingest: throughput vs shard count",
		Note: fmt.Sprintf("speedup = measured wall clock, bounded by host cores (num_cpu=%d, gomaxprocs=%d here); "+
			"rows marked (projected) had more shards than cores, so only proj — the critical-path "+
			"speedup from standalone shard replays — estimates scaling", report.NumCPU, report.GoMaxProcs),
		Header: []string{"shards", "frames", "dim", "ns/frame", "frames/s", "speedup", "proj", "cov bound", "ell"},
	}
	for _, r := range report.Results {
		speedup := formatFloat(r.Speedup)
		if r.Projected {
			speedup += " (projected)"
		}
		t.Append(r.Shards, r.Frames, r.Dim, r.NsPerFrame, r.FramesPerSec,
			speedup, r.ProjectedSpeedup, r.CertBound, r.GlobalEll)
	}
	return report, t
}
