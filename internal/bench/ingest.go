package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"testing"

	"arams/internal/engine"
	"arams/internal/mat"
	"arams/internal/rng"
	"arams/internal/sketch"
)

// Sharded-ingest benchmark: times the streaming engine end to end
// (routing, per-shard FD absorption, window bookkeeping) at shard
// counts {1, 2, 4, 8} on one synthetic stream, so BENCH_ingest.json
// records how ingest throughput scales when the sketch is split across
// concurrent shards. Shard absorption is the parallel section; the
// speedup column is therefore bounded by the cores the host exposes —
// num_cpu in the report says what that bound was when the numbers were
// taken. Each multi-shard count is measured under both reconcile
// cadences (fixed countdown and the adaptive controller), and a
// separate quiet-stream scenario isolates the cadence effect: on a
// stream adding no shrinkage the adaptive controller merges only at
// the hard lag cap, with an identical certificate.

// IngestResult is one (shard count, cadence) measurement. Speedup is
// measured wall clock and therefore bounded by the host's cores;
// ProjectedSpeedup is the critical-path speedup of the sketch section
// for a host with one core per shard: each shard's round-robin subset
// is replayed standalone (no interleaving, no scheduler noise) and the
// busiest shard's replay time is compared against the whole stream
// replayed through one sketcher. Round-robin keeps the subsets
// balanced, so this approaches the shard count until per-rotation cost
// stops amortizing.
type IngestResult struct {
	Shards int `json:"shards"`
	// Adaptive marks rows measured with the staleness-driven reconcile
	// controller instead of the fixed ReconcileEvery countdown.
	Adaptive         bool    `json:"adaptive"`
	Frames           int     `json:"frames"`
	Dim              int     `json:"dim"`
	BatchSize        int     `json:"batch_size"`
	NsPerFrame       int64   `json:"ns_per_frame"`
	FramesPerSec     float64 `json:"frames_per_sec"`
	Speedup          float64 `json:"speedup_vs_serial"`
	ProjectedSpeedup float64 `json:"projected_speedup_full_cores"`
	// Projected marks rows measured on a host with fewer cores than
	// shards: the wall-clock Speedup column there says nothing about
	// shard scaling (the shards time-sliced one another), and only
	// ProjectedSpeedup — built from standalone per-shard replays — is
	// an honest scaling estimate.
	Projected bool `json:"speedup_projected"`
	// Reconciles counts global-sketch rebuilds during ingest (before
	// the final certificate forces one more).
	Reconciles int     `json:"reconciles"`
	CertBound  float64 `json:"cert_cov_bound"`
	GlobalEll  int     `json:"global_ell"`
}

// CadenceResult is one side of the quiet-stream cadence comparison: an
// exactly-low-rank stream adds zero shrinkage, so the adaptive
// controller defers merges to its hard lag cap while the fixed
// countdown keeps paying them, and both must end with the same
// certificate.
type CadenceResult struct {
	Mode           string  `json:"mode"` // "fixed" or "adaptive"
	Shards         int     `json:"shards"`
	Frames         int     `json:"frames"`
	ReconcileEvery int     `json:"reconcile_every"`
	Reconciles     int     `json:"reconciles"`
	CertBound      float64 `json:"cert_cov_bound"`
}

// IngestReport is the full sweep, serialized to BENCH_ingest.json.
// NumCPU and GoMaxProcs record the parallelism the host actually
// offered when the numbers were taken, so a reader can tell measured
// speedups from time-sliced ones.
type IngestReport struct {
	NumCPU     int             `json:"num_cpu"`
	GoMaxProcs int             `json:"gomaxprocs"`
	Results    []IngestResult  `json:"results"`
	Quiet      []CadenceResult `json:"quiet_stream"`
}

// WriteJSON serializes the report with stable indentation.
func (r *IngestReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Assert enforces the regression gates the CI bench-smoke job runs
// after a sweep on a multicore runner:
//
//   - on a host with ≥ 4 cores, measured shards=4 wall clock must beat
//     shards=1 (speedup > 1) — the sharded-ingest slowdown this engine
//     revision fixed must not come back;
//   - on the quiet stream, the adaptive cadence must reconcile fewer
//     times than the fixed one without widening the certified bound.
func (r *IngestReport) Assert() error {
	for _, res := range r.Results {
		if res.Shards == 4 && !res.Projected && r.NumCPU >= 4 && res.Speedup <= 1.0 {
			return fmt.Errorf("bench: measured shards=4 ingest slower than serial (speedup %.3f on %d cores, adaptive=%v)",
				res.Speedup, r.NumCPU, res.Adaptive)
		}
	}
	var fixed, adaptive *CadenceResult
	for i := range r.Quiet {
		switch r.Quiet[i].Mode {
		case "fixed":
			fixed = &r.Quiet[i]
		case "adaptive":
			adaptive = &r.Quiet[i]
		}
	}
	if fixed == nil || adaptive == nil {
		return fmt.Errorf("bench: quiet-stream comparison missing a cadence mode")
	}
	if adaptive.Reconciles >= fixed.Reconciles {
		return fmt.Errorf("bench: adaptive cadence did not reduce quiet-stream reconciles (%d vs fixed %d)",
			adaptive.Reconciles, fixed.Reconciles)
	}
	if adaptive.CertBound > fixed.CertBound*(1+1e-9)+1e-12 {
		return fmt.Errorf("bench: adaptive cadence widened the certified bound (%.6g vs fixed %.6g)",
			adaptive.CertBound, fixed.CertBound)
	}
	return nil
}

// ingestRun streams every frame through a fresh engine and returns it.
// The engine takes ownership of ingested vectors, so each run feeds
// from its own copy.
func ingestRun(cfg engine.Config, vecs [][]float64, batch int) *engine.Engine {
	e := engine.New(cfg)
	tags := make([]int, batch)
	for base := 0; base < len(vecs); base += batch {
		hi := base + batch
		if hi > len(vecs) {
			hi = len(vecs)
		}
		chunk := make([][]float64, hi-base)
		for i := range chunk {
			chunk[i] = append([]float64(nil), vecs[base+i]...)
			tags[i] = base + i
		}
		e.IngestVecs(chunk, tags[:len(chunk)])
	}
	return e
}

// replayNs times one shard's stream through a standalone sketcher —
// exactly the absorb work a dedicated core would run, with nothing
// else scheduled on top of it.
func replayNs(cfg sketch.Config, rows [][]float64) int64 {
	d := len(rows[0])
	br := testing.Benchmark(func(b *testing.B) {
		for n := 0; n < b.N; n++ {
			a := sketch.NewARAMS(cfg, d, 0)
			for _, v := range rows {
				a.ProcessBatch(mat.FromData(1, d, append([]float64(nil), v...)))
			}
		}
	})
	return br.NsPerOp()
}

// lowRankStream draws frames from the span of `rank` fixed directions
// with per-frame weights, plus optional isotropic noise.
func lowRankStream(g *rng.RNG, frames, d, rank int, noise float64) [][]float64 {
	basis := make([][]float64, rank)
	for r := range basis {
		basis[r] = make([]float64, d)
		for j := range basis[r] {
			basis[r][j] = g.Norm()
		}
	}
	vecs := make([][]float64, frames)
	for i := range vecs {
		v := make([]float64, d)
		for r := 0; r < rank; r++ {
			w := g.Norm() * float64(rank-r)
			for j := range v {
				v[j] += w * basis[r][j]
			}
		}
		if noise > 0 {
			for j := range v {
				v[j] += noise * g.Norm()
			}
		}
		vecs[i] = v
	}
	return vecs
}

// IngestSweep measures ingest throughput at shard counts {1, 2, 4, 8}
// on one low-rank-plus-noise stream, under both reconcile cadences for
// the multi-shard counts, then runs the quiet-stream cadence
// comparison. quick restricts the sweep to {1, 4} at reduced shape for
// the CI smoke job; the full sweep backs the checked-in
// BENCH_ingest.json.
func IngestSweep(seed uint64, quick bool) (*IngestReport, *Table) {
	shardCounts := []int{1, 2, 4, 8}
	frames, d, ell0, batch := 768, 1024, 16, 32
	if quick {
		shardCounts = []int{1, 4}
		frames, d, ell0, batch = 192, 256, 8, 32
	}
	const reconcileEvery = 64

	// Rank-8 signal plus noise, the same stream for every shard count.
	g := rng.New(seed)
	vecs := lowRankStream(g, frames, d, 8, 0.1)

	report := &IngestReport{NumCPU: runtime.NumCPU(), GoMaxProcs: runtime.GOMAXPROCS(0)}
	var serialNs, serialReplay int64
	for _, s := range shardCounts {
		// Critical path: replay each shard's round-robin subset through
		// a standalone sketcher, serially, so no replay is timed with
		// another one scheduled on top of it. The busiest shard bounds
		// sharded wall time on a one-core-per-shard host. Cadence does
		// not enter the replay, so it is computed once per shard count.
		baseCfg := engine.Config{
			Shards:         s,
			Window:         64,
			BatchSize:      batch,
			ReconcileEvery: reconcileEvery,
			Sketch:         sketch.Config{Ell0: ell0, Beta: 1, Seed: seed},
		}
		var maxReplay int64
		for i := 0; i < s; i++ {
			var rows [][]float64
			for j := i; j < frames; j += s {
				rows = append(rows, vecs[j])
			}
			if r := replayNs(engine.ShardSketchConfig(baseCfg.Sketch, i), rows); r > maxReplay {
				maxReplay = r
			}
		}
		if s == 1 {
			serialReplay = maxReplay
		}

		modes := []bool{false}
		if s > 1 {
			modes = []bool{false, true}
		}
		for _, adaptive := range modes {
			cfg := baseCfg
			cfg.ReconcileFixed = !adaptive
			br := testing.Benchmark(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					ingestRun(cfg, vecs, batch)
				}
			})
			nsFrame := br.NsPerOp() / int64(frames)
			if nsFrame <= 0 {
				nsFrame = 1
			}
			if s == 1 {
				serialNs = nsFrame
			}
			// One untimed run for the quality columns: the certificate
			// must stay valid at every shard count and cadence, and the
			// merged rank never exceeds the per-shard maximum. The
			// reconcile count is read before Certificate forces one
			// final merge.
			e := ingestRun(cfg, vecs, batch)
			reconciles := e.Reconciles()
			report.Results = append(report.Results, IngestResult{
				Shards:           s,
				Adaptive:         adaptive,
				Frames:           frames,
				Dim:              d,
				BatchSize:        batch,
				NsPerFrame:       nsFrame,
				FramesPerSec:     1e9 / float64(nsFrame),
				Speedup:          float64(serialNs) / float64(nsFrame),
				ProjectedSpeedup: float64(serialReplay) / float64(maxReplay),
				Projected:        s > report.NumCPU,
				Reconciles:       reconciles,
				CertBound:        e.Certificate().CovBound(),
				GlobalEll:        e.Ell(),
			})
		}
	}

	report.Quiet = quietCadenceComparison(seed+1, quick)

	t := &Table{
		Title: "Streaming ingest: throughput vs shard count and reconcile cadence",
		Note: fmt.Sprintf("speedup = measured wall clock, bounded by host cores (num_cpu=%d, gomaxprocs=%d here); "+
			"rows marked (projected) had more shards than cores, so only proj — the critical-path "+
			"speedup from standalone shard replays — estimates scaling; cadence compares reconcile "+
			"counts at ReconcileEvery=%d", report.NumCPU, report.GoMaxProcs, reconcileEvery),
		Header: []string{"shards", "cadence", "frames", "dim", "ns/frame", "frames/s", "speedup", "proj", "reconciles", "cov bound", "ell"},
	}
	for _, r := range report.Results {
		speedup := formatFloat(r.Speedup)
		if r.Projected {
			speedup += " (projected)"
		}
		cadence := "fixed"
		if r.Adaptive {
			cadence = "adaptive"
		}
		t.Append(r.Shards, cadence, r.Frames, r.Dim, r.NsPerFrame, r.FramesPerSec,
			speedup, r.ProjectedSpeedup, r.Reconciles, r.CertBound, r.GlobalEll)
	}
	for _, q := range report.Quiet {
		t.Append(4, "quiet/"+q.Mode, q.Frames, "-", "-", "-", "-", "-", q.Reconciles, q.CertBound, "-")
	}
	return report, t
}

// quietCadenceComparison runs the quiet-stream scenario: an exactly
// rank-r stream (r < ℓ) adds zero shrinkage Σδ, so the adaptive
// controller has no staleness signal and defers merges to its hard lag
// cap, while the fixed countdown reconciles every ReconcileEvery
// frames. Reconciles only clone shards, so both cadences must produce
// the identical certificate.
func quietCadenceComparison(seed uint64, quick bool) []CadenceResult {
	frames, d, ell0, batch := 512, 256, 16, 32
	if quick {
		frames, d, ell0, batch = 256, 128, 8, 32
	}
	const reconcileEvery = 32
	g := rng.New(seed)
	vecs := lowRankStream(g, frames, d, ell0/2, 0)

	out := make([]CadenceResult, 0, 2)
	for _, adaptive := range []bool{false, true} {
		cfg := engine.Config{
			Shards:         4,
			Window:         64,
			BatchSize:      batch,
			ReconcileEvery: reconcileEvery,
			Sketch:         sketch.Config{Ell0: ell0, Beta: 1, Seed: seed},
		}
		cfg.ReconcileFixed = !adaptive
		e := ingestRun(cfg, vecs, batch)
		mode := "fixed"
		if adaptive {
			mode = "adaptive"
		}
		out = append(out, CadenceResult{
			Mode:           mode,
			Shards:         4,
			Frames:         frames,
			ReconcileEvery: reconcileEvery,
			Reconciles:     e.Reconciles(),
			CertBound:      e.Certificate().CovBound(),
		})
	}
	return out
}
