package bench

import (
	"arams/internal/mat"
	"arams/internal/parallel"
	"arams/internal/sketch"
	"arams/internal/synth"
)

// ScalingParams sizes the Fig. 2/3 strong-scaling study. The paper
// sketches a 2000×1,658,880 matrix (2-megapixel frames) with ℓ=200 on
// up to 128 MPI ranks; the defaults shrink the feature dimension so the
// study fits in laptop memory, which preserves the scaling *shape*
// (the serial merge plateaus, the tree merge keeps scaling) because
// the rotation count per strategy is dimension-independent.
type ScalingParams struct {
	N, D, Rank int
	Ell        int
	Cores      []int // worker counts to sweep
	Seed       uint64
}

// DefaultScaling returns laptop-scale parameters. The cores sweep goes
// beyond the host CPU count on purpose: the critical-path runtime
// column models ideal hardware (like the paper's 128 MPI ranks), while
// the wall-clock column reflects whatever this host can actually do.
func DefaultScaling() ScalingParams {
	return ScalingParams{
		N: 1024, D: 4096, Rank: 64, Ell: 48,
		Cores: []int{1, 2, 4, 8, 16, 32, 64}, Seed: 2,
	}
}

// FullScaling returns parameters closer to the paper's run (heavy:
// several GiB of data).
func FullScaling() ScalingParams {
	p := DefaultScaling()
	p.N, p.D, p.Rank, p.Ell = 2000, 131072, 128, 200
	return p
}

// scalingData builds the cubically-decaying dataset shards used by both
// figures, mirroring §V.3's generation.
func scalingData(p ScalingParams, shards int) []*synth.Dataset {
	per := p.N / shards
	return synth.GenerateSharded(synth.Params{
		D: p.D, Rank: p.Rank, Decay: synth.Cubic, Seed: p.Seed,
	}, shards, per, 0.05)
}

// Fig2Scaling reproduces Fig. 2: runtime versus worker count for
// tree-merge and serial-merge parallel Frequent Directions.
//
// Two runtimes are reported. wall_ms is the measured wall time of the
// goroutine implementation on this host — faithful only when the host
// has at least as many cores as workers. critpath_ms is the measured
// strong-scaling critical path (parallel.Stats.CriticalPath): the
// slowest worker's sketch time plus the per-level slowest merge (tree)
// or every merge (serial fold). The critical path is what the paper's
// MPI runtime measures, and it reproduces Fig. 2's shape — near-linear
// scaling for the tree, a plateau for the serial merge — on any
// machine, including single-core CI boxes.
func Fig2Scaling(p ScalingParams) *Table {
	t := &Table{
		Title: "Fig.2: strong scaling — runtime vs cores (log-log in the paper)",
		Note: "expect: tree-merge critpath falls ~linearly with cores; serial-merge " +
			"plateaus (paper: at ~16 cores); merge rotations log vs linear",
		Header: []string{"cores", "strategy", "work_ms", "critpath_ms", "speedup",
			"efficiency", "merge_rounds", "merge_rotations"},
	}
	maxCores := p.Cores[len(p.Cores)-1]
	fine := scalingData(p, maxCores)
	baselines := map[parallel.MergeStrategy]float64{}
	for _, cores := range p.Cores {
		mats := groupShards(fine, cores)
		for _, strat := range []parallel.MergeStrategy{parallel.TreeMerge, parallel.SerialMerge} {
			_, stats := parallel.RunSimulated(mats, parallel.FDSketcher(p.Ell, sketch.Options{}), strat)
			workMs := stats.Total.Seconds() * 1000
			critMs := stats.CriticalPath.Seconds() * 1000
			if cores == p.Cores[0] {
				baselines[strat] = critMs
			}
			speedup := baselines[strat] / critMs
			t.Append(cores, strat.String(), workMs, critMs, speedup,
				speedup/float64(cores), stats.MergeRounds, stats.MergeRotations)
		}
	}
	return t
}

// groupShards concatenates the finest-granularity shards into `cores`
// contiguous groups, so every worker count sees the same underlying
// data.
func groupShards(fine []*synth.Dataset, cores int) []*mat.Matrix {
	per := len(fine) / cores
	out := make([]*mat.Matrix, 0, cores)
	for g := 0; g < cores; g++ {
		out = append(out, synth.Concat(fine[g*per:(g+1)*per]))
	}
	return out
}

// Fig3Error reproduces Fig. 3: sketch error versus worker count for
// both merge strategies; the tree merge's error must track the serial
// merge's closely.
func Fig3Error(p ScalingParams) *Table {
	t := &Table{
		Title:  "Fig.3: error vs cores (log-log in the paper)",
		Note:   "expect: tree-merge error tracks serial-merge error across all core counts",
		Header: []string{"cores", "tree_rel_err", "serial_rel_err", "ratio"},
	}
	maxCores := p.Cores[len(p.Cores)-1]
	fine := scalingData(p, maxCores)
	full := synth.Concat(fine)
	for _, cores := range p.Cores {
		mats := groupShards(fine, cores)
		var errs [2]float64
		for i, strat := range []parallel.MergeStrategy{parallel.TreeMerge, parallel.SerialMerge} {
			global, _ := parallel.Run(mats, parallel.FDSketcher(p.Ell, sketch.Options{}), strat)
			basis := global.Basis(global.Ell())
			errs[i] = sketch.RelProjErr(full, basis)
		}
		ratio := 0.0
		if errs[1] > 0 {
			ratio = errs[0] / errs[1]
		}
		t.Append(cores, errs[0], errs[1], ratio)
	}
	return t
}

func matsOf(shards []*synth.Dataset) []*mat.Matrix {
	out := make([]*mat.Matrix, len(shards))
	for i, s := range shards {
		out[i] = s.A
	}
	return out
}
