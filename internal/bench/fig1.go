package bench

import (
	"time"

	"arams/internal/mat"
	"arams/internal/rng"
	"arams/internal/sketch"
	"arams/internal/synth"
)

// Fig1Params sizes the §V ablation study. The paper uses 15000×1000
// matrices with ranks/errors swept 0–500; the defaults here are scaled
// so the whole study runs in seconds on a laptop while preserving every
// qualitative trend. Full reproduces the paper's dimensions.
type Fig1Params struct {
	N, D, Rank int
	// EllSweep are the sketch sizes for the user-specified-rank
	// variants; EpsSweep the error targets for the rank-adaptive ones.
	EllSweep []int
	EpsSweep []float64
	Nu       int     // probe count / rank increment
	Beta     float64 // priority-sampling keep fraction
	Seed     uint64
}

// DefaultFig1 returns laptop-scale parameters.
func DefaultFig1() Fig1Params {
	return Fig1Params{
		N: 2000, D: 400, Rank: 200,
		EllSweep: []int{10, 20, 40, 60, 90, 130, 180},
		EpsSweep: []float64{0.5, 0.3, 0.15, 0.08, 0.04, 0.02, 0.01},
		Nu:       10,
		Beta:     0.8,
		Seed:     1,
	}
}

// FullFig1 returns the paper's dimensions (minutes of runtime).
func FullFig1() Fig1Params {
	p := DefaultFig1()
	p.N, p.D, p.Rank = 15000, 1000, 500
	p.EllSweep = []int{10, 25, 50, 100, 200, 350, 500}
	return p
}

// Fig1SingularValues reproduces the upper-left panel of Fig. 1: the
// spectra of the three synthetic datasets.
func Fig1SingularValues(p Fig1Params) *Table {
	t := &Table{
		Title:  "Fig.1 (upper-left): singular-value profiles",
		Note:   "semilog-y decay: super-exponential steepest, sub-exponential flattest",
		Header: []string{"index", "sub-exponential", "exponential", "super-exponential"},
	}
	sub := synth.SingularValues(synth.SubExponential, p.Rank, 1)
	exp := synth.SingularValues(synth.Exponential, p.Rank, 1)
	sup := synth.SingularValues(synth.SuperExponential, p.Rank, 1)
	step := p.Rank / 20
	if step < 1 {
		step = 1
	}
	for i := 0; i < p.Rank; i += step {
		t.Append(i, sub[i], exp[i], sup[i])
	}
	return t
}

// variant names the four algorithm configurations of Fig. 1.
type variant struct {
	name         string
	rankAdaptive bool
	sampling     bool
}

var fig1Variants = []variant{
	{"FD (user rank)", false, false},
	{"RA-FD (user error)", true, false},
	{"PS+FD (user rank)", false, true},
	{"PS+RA-FD (user error)", true, true},
}

// Fig1ErrorRuntime reproduces the three error-versus-runtime panels of
// Fig. 1: for each singular-value decay profile, each of the four
// variants is swept over its parameter, recording wall time and
// relative projection error.
func Fig1ErrorRuntime(p Fig1Params) []*Table {
	var out []*Table
	for _, decay := range []synth.Decay{SubE, ExpE, SupE} {
		ds := synth.Generate(synth.Params{
			N: p.N, D: p.D, Rank: p.Rank, Decay: decay, Seed: p.Seed,
		})
		t := &Table{
			Title: "Fig.1: error vs runtime — " + decay.String() + " decay",
			Note: "expect: PS variants dominate the frontier; RA tracks fixed-rank closely" +
				" (gap widest for sub-exponential)",
			Header: []string{"variant", "param", "ell_final", "runtime_ms", "rel_proj_err"},
		}
		for _, v := range fig1Variants {
			steps := len(p.EllSweep)
			if v.rankAdaptive {
				steps = len(p.EpsSweep)
			}
			for s := 0; s < steps; s++ {
				cfg := sketch.Config{
					Nu:           p.Nu,
					Beta:         1,
					RankAdaptive: v.rankAdaptive,
					Seed:         p.Seed + uint64(s),
				}
				var param string
				if v.rankAdaptive {
					cfg.Ell0 = 10
					cfg.Eps = p.EpsSweep[s]
					param = formatFloat(cfg.Eps)
				} else {
					cfg.Ell0 = p.EllSweep[s]
					param = formatFloat(float64(cfg.Ell0))
				}
				if v.sampling {
					cfg.Beta = p.Beta
				}
				start := time.Now()
				a := sketch.NewARAMS(cfg, p.D, p.N)
				a.ProcessBatch(ds.A)
				elapsed := time.Since(start)
				basis := a.Basis(a.Ell())
				relErr := sketch.RelProjErr(ds.A, basis)
				t.Append(v.name, param, a.Ell(),
					float64(elapsed.Microseconds())/1000, relErr)
			}
		}
		out = append(out, t)
	}
	return out
}

// Decay aliases keep the sweep loop readable.
const (
	SubE = synth.SubExponential
	ExpE = synth.Exponential
	SupE = synth.SuperExponential
)

// ProbeSweep quantifies Algorithm 1's accuracy versus probe count ν —
// the paper reports roughly 10% error reduction per 10 extra probes.
func ProbeSweep(seed uint64) *Table {
	t := &Table{
		Title:  "Alg.1 ablation: Frobenius-estimator accuracy vs probe count",
		Note:   "mean |est−exact|/exact must fall as ν grows (≈1/√ν)",
		Header: []string{"nu", "mean_rel_dev", "trials"},
	}
	g := rng.New(seed)
	x := mat.RandGaussian(300, 120, g)
	_, _, vtFull := mat.SVD(x)
	vt := mat.New(20, 120)
	for i := 0; i < 20; i++ {
		copy(vt.Row(i), vtFull.Row(i))
	}
	exact := sketch.ProjErrSq(x, vt)
	const trials = 60
	for _, nu := range []int{1, 2, 5, 10, 20, 40, 80} {
		var dev float64
		for tr := 0; tr < trials; tr++ {
			est := sketch.EstimateResidualSq(x, vt, nu, rng.NewStream(uint64(tr), uint64(nu)))
			d := (est - exact) / exact
			if d < 0 {
				d = -d
			}
			dev += d
		}
		t.Append(nu, dev/trials, trials)
	}
	return t
}

// BetaSweep measures the runtime/error effect of the priority-sampling
// keep fraction β (Algorithm 3's acceleration knob).
func BetaSweep(p Fig1Params) *Table {
	t := &Table{
		Title:  "ARAMS ablation: priority-sampling fraction β",
		Note:   "runtime falls roughly linearly in β; error grows slowly until β ≪ 1",
		Header: []string{"beta", "runtime_ms", "rel_proj_err"},
	}
	ds := synth.Generate(synth.Params{
		N: p.N, D: p.D, Rank: p.Rank, Decay: synth.Exponential, Seed: p.Seed,
	})
	ell := 60
	if len(p.EllSweep) > 0 {
		ell = p.EllSweep[len(p.EllSweep)/2]
	}
	for _, beta := range []float64{0.5, 0.65, 0.8, 0.95, 1.0} {
		cfg := sketch.Config{Ell0: ell, Beta: beta, Seed: p.Seed}
		start := time.Now()
		a := sketch.NewARAMS(cfg, p.D, p.N)
		a.ProcessBatch(ds.A)
		elapsed := time.Since(start)
		relErr := sketch.RelProjErr(ds.A, a.Basis(a.Ell()))
		t.Append(beta, float64(elapsed.Microseconds())/1000, relErr)
	}
	return t
}
