package bench

import (
	"fmt"
	"time"

	"arams/internal/engine"
	"arams/internal/fabric"
	"arams/internal/rng"
	"arams/internal/sketch"
)

// FabricSweep measures the distributed-fabric ingest path against the
// all-local engine on the same stream: per-frame cost and rows/s for N
// local shards versus N loopback TCP workers (wire codec, framing, and
// round trips included, network distance excluded). The gap between
// the two columns is the fabric protocol overhead a real deployment
// pays before any network latency. Quick mode shrinks the stream for
// CI smoke runs.
func FabricSweep(seed uint64, quick bool) *Table {
	shardCounts := []int{1, 2, 4}
	frames, d, ell0, batch := 768, 512, 16, 32
	if quick {
		shardCounts = []int{1, 2}
		frames, d, ell0, batch = 192, 128, 8, 32
	}

	g := rng.New(seed)
	vecs := lowRankStream(g, frames, d, 8, 0.1)

	t := &Table{
		Title:  "fabric loopback overhead — local shards vs TCP workers, same stream",
		Note:   "fabric/local is the protocol cost floor; it shrinks as d grows (payload amortizes framing)",
		Header: []string{"shards", "local ns/frame", "fabric ns/frame", "fabric/local", "fabric rows/s"},
	}
	for _, s := range shardCounts {
		cfg := engine.Config{
			Shards:         s,
			Window:         64,
			BatchSize:      batch,
			ReconcileEvery: 64,
			Sketch:         sketch.Config{Ell0: ell0, Beta: 1, Seed: seed},
		}
		localNs := timedIngest(func() { ingestRun(cfg, vecs, batch).Close() }, frames)

		fabricNs := timedIngest(func() {
			workers, addrs, err := fabric.StartLoopbackWorkers(s)
			if err != nil {
				panic(fmt.Sprintf("bench: loopback workers: %v", err))
			}
			coord, err := fabric.NewCoordinator(fabric.CoordinatorConfig{
				Workers: addrs,
				Engine:  cfg,
				Remote:  fabric.RemoteConfig{HeartbeatEvery: -1},
			})
			if err != nil {
				panic(fmt.Sprintf("bench: coordinator: %v", err))
			}
			for base := 0; base < len(vecs); base += batch {
				hi := base + batch
				if hi > len(vecs) {
					hi = len(vecs)
				}
				chunk := make([][]float64, hi-base)
				for i := range chunk {
					chunk[i] = append([]float64(nil), vecs[base+i]...)
				}
				coord.Engine().IngestVecs(chunk, nil)
			}
			coord.Close()
			for _, w := range workers {
				w.Close()
			}
		}, frames)

		rowsPerSec := float64(time.Second) / float64(fabricNs)
		t.Append(s, localNs, fabricNs,
			fmt.Sprintf("%.2fx", float64(fabricNs)/float64(localNs)),
			fmt.Sprintf("%.0f", rowsPerSec))
	}
	return t
}

// timedIngest runs fn enough times to get a stable per-frame figure
// (at least 3 runs or 300ms of measurement, whichever is more).
func timedIngest(fn func(), frames int) int64 {
	var total time.Duration
	runs := 0
	for runs < 3 || total < 300*time.Millisecond {
		start := time.Now()
		fn()
		total += time.Since(start)
		runs++
		if runs >= 50 {
			break
		}
	}
	ns := total.Nanoseconds() / int64(runs) / int64(frames)
	if ns <= 0 {
		ns = 1
	}
	return ns
}
