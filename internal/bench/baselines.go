package bench

import (
	"time"

	"arams/internal/mat"
	"arams/internal/rng"
	"arams/internal/sketch"
	"arams/internal/synth"
)

// BaselineSweep compares Frequent Directions against the classic
// streaming-sketch baselines (dense Gaussian projection, CountSketch
// hashing, length-squared row sampling) across sketch sizes — the
// comparison class of Desai–Ghashami–Phillips [5], whose conclusion the
// paper leans on ("Frequent Directions has stood out for its
// theoretical and practical error bounds, though lags behind other
// matrix sketching techniques in run-time performance").
func BaselineSweep(p Fig1Params) *Table {
	t := &Table{
		Title: "Baseline sketchers vs Frequent Directions ([5]'s comparison)",
		Note: "expect: FD lowest error per ℓ (deterministic shrinkage) but slowest; " +
			"hashing/sampling fast but noisy — the gap ARAMS's priority sampling narrows",
		Header: []string{"ell", "algorithm", "runtime_ms", "cov_err_rel"},
	}
	ds := synth.Generate(synth.Params{
		N: p.N, D: p.D, Rank: p.Rank, Decay: synth.Exponential, Seed: p.Seed,
	})
	a := ds.A
	norm := a.FrobeniusNormSq()
	for _, ell := range []int{10, 20, 40, 80} {
		mks := []func() sketch.Summarizer{
			func() sketch.Summarizer { return sketch.NewFrequentDirections(ell, p.D, sketch.Options{}) },
			func() sketch.Summarizer { return sketch.NewRandomProjection(ell, p.D, rng.New(p.Seed+1)) },
			func() sketch.Summarizer { return sketch.NewCountSketch(ell, p.D, rng.New(p.Seed+2)) },
			func() sketch.Summarizer { return sketch.NewNormSampler(ell, p.D, rng.New(p.Seed+3)) },
		}
		for _, mk := range mks {
			s := mk()
			start := time.Now()
			var b *mat.Matrix
			for i := 0; i < a.RowsN; i++ {
				s.Append(a.Row(i))
			}
			b = s.Sketch()
			elapsed := time.Since(start)
			t.Append(ell, s.Name(),
				float64(elapsed.Microseconds())/1000,
				sketch.CovErr(a, b)/norm)
		}
	}
	return t
}
