package bench

import (
	"bytes"
	"strings"
	"testing"
)

func TestChartFig1SV(t *testing.T) {
	tb := Fig1SingularValues(tinyFig1())
	c := ChartFig1SV(tb)
	if len(c.Series) != 3 {
		t.Fatalf("series = %d", len(c.Series))
	}
	if !c.LogY || c.LogX {
		t.Fatal("fig1sv should be semilog-y")
	}
	var buf bytes.Buffer
	if err := c.WriteHTML(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "sub-exponential") {
		t.Fatal("legend series missing")
	}
}

func TestChartFig1(t *testing.T) {
	tables := Fig1ErrorRuntime(tinyFig1())
	c := ChartFig1(tables[0])
	if len(c.Series) != 4 {
		t.Fatalf("variants = %d, want 4", len(c.Series))
	}
	for _, s := range c.Series {
		if len(s.X) != 3 { // tiny sweep has 3 points per variant
			t.Fatalf("series %s has %d points", s.Name, len(s.X))
		}
	}
}

func TestChartFig2AndFig3(t *testing.T) {
	sp := tinyScaling()
	c2 := ChartFig2(Fig2Scaling(sp))
	if len(c2.Series) != 2 || !c2.LogX || !c2.LogY {
		t.Fatalf("fig2 chart wrong: %d series", len(c2.Series))
	}
	c3 := ChartFig3(Fig3Error(sp))
	if len(c3.Series) != 2 {
		t.Fatalf("fig3 chart wrong: %d series", len(c3.Series))
	}
	if c3.Series[0].Name != "tree-merge" || c3.Series[1].Name != "serial-merge" {
		t.Fatalf("fig3 series order: %s, %s", c3.Series[0].Name, c3.Series[1].Name)
	}
	var buf bytes.Buffer
	if err := c3.WriteHTML(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestChartXYColumns(t *testing.T) {
	tb := ProbeSweep(9)
	c := ChartXYColumns(tb, 0, 1, true)
	if len(c.Series) != 1 || len(c.Series[0].X) != len(tb.Rows) {
		t.Fatal("generic chart wrong")
	}
}

func TestCellPanicsOnText(t *testing.T) {
	tb := &Table{Title: "t", Header: []string{"a"}, Rows: [][]string{{"hello"}}}
	defer func() {
		if recover() == nil {
			t.Fatal("text cell did not panic")
		}
	}()
	cell(tb, 0, 0)
}
