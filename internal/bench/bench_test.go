package bench

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"arams/internal/synth"
)

func fmtSscan(s string, v *float64) (int, error) { return fmt.Sscan(s, v) }

// tinyFig1 keeps experiment smoke tests fast.
func tinyFig1() Fig1Params {
	return Fig1Params{
		N: 300, D: 80, Rank: 40,
		EllSweep: []int{5, 10, 20},
		EpsSweep: []float64{0.3, 0.1, 0.03},
		Nu:       5,
		Beta:     0.8,
		Seed:     1,
	}
}

func tinyScaling() ScalingParams {
	return ScalingParams{N: 128, D: 256, Rank: 16, Ell: 12, Cores: []int{1, 2, 4}, Seed: 2}
}

func TestTableFormatting(t *testing.T) {
	tb := &Table{Title: "t", Note: "n", Header: []string{"a", "b"}}
	tb.Append(1, 2.5)
	tb.Append("x", 1e-7)
	var buf bytes.Buffer
	tb.Print(&buf)
	out := buf.String()
	for _, want := range []string{"== t ==", "a", "2.5000", "1.000e-07"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	buf.Reset()
	tb.CSV(&buf)
	if !strings.HasPrefix(buf.String(), "a,b\n") {
		t.Fatalf("CSV header wrong: %q", buf.String())
	}
}

func TestFig1SingularValues(t *testing.T) {
	tb := Fig1SingularValues(tinyFig1())
	if len(tb.Rows) == 0 {
		t.Fatal("no rows")
	}
	// Column order: sub > exp > super at the tail row.
	last := tb.Rows[len(tb.Rows)-1]
	sub, exp, sup := parseF(t, last[1]), parseF(t, last[2]), parseF(t, last[3])
	if !(sup < exp && exp < sub) {
		t.Fatalf("tail ordering wrong: %v", last)
	}
}

func parseF(t *testing.T, s string) float64 {
	t.Helper()
	var v float64
	if _, err := fmtSscan(s, &v); err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return v
}

func TestFig1ErrorRuntime(t *testing.T) {
	tables := Fig1ErrorRuntime(tinyFig1())
	if len(tables) != 3 {
		t.Fatalf("want 3 decay tables, got %d", len(tables))
	}
	for _, tb := range tables {
		// 4 variants × 3 sweep points.
		if len(tb.Rows) != 12 {
			t.Fatalf("%s: %d rows", tb.Title, len(tb.Rows))
		}
		// Within the fixed-rank FD variant, error must fall as ℓ grows.
		var errs []float64
		for _, r := range tb.Rows {
			if r[0] == "FD (user rank)" {
				errs = append(errs, parseF(t, r[4]))
			}
		}
		for i := 1; i < len(errs); i++ {
			if errs[i] > errs[i-1]*1.3+1e-12 {
				t.Fatalf("%s: FD error not decreasing with ℓ: %v", tb.Title, errs)
			}
		}
	}
}

func TestFig2Scaling(t *testing.T) {
	tb := Fig2Scaling(tinyScaling())
	if len(tb.Rows) != 6 { // 3 core counts × 2 strategies
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// Tree merge at 4 cores must use fewer merge rotations than serial.
	var treeRot, serialRot float64
	for _, r := range tb.Rows {
		if r[0] == "4" && r[1] == "tree-merge" {
			treeRot = parseF(t, r[6])
		}
		if r[0] == "4" && r[1] == "serial-merge" {
			serialRot = parseF(t, r[6])
		}
	}
	if treeRot > serialRot {
		t.Fatalf("tree rotations %v > serial %v", treeRot, serialRot)
	}
}

func TestFig3Error(t *testing.T) {
	tb := Fig3Error(tinyScaling())
	if len(tb.Rows) != 3 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	for _, r := range tb.Rows {
		ratio := parseF(t, r[3])
		if ratio < 0.2 || ratio > 5 {
			t.Fatalf("tree/serial error ratio %v far from 1 (cores=%s)", ratio, r[0])
		}
	}
}

func TestProbeSweep(t *testing.T) {
	tb := ProbeSweep(3)
	if len(tb.Rows) != 7 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	first := parseF(t, tb.Rows[0][1])
	last := parseF(t, tb.Rows[len(tb.Rows)-1][1])
	if last >= first {
		t.Fatalf("estimator deviation did not fall with nu: %v → %v", first, last)
	}
}

func TestBetaSweep(t *testing.T) {
	tb := BetaSweep(tinyFig1())
	if len(tb.Rows) != 5 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
}

func TestFig5AndFig6Smoke(t *testing.T) {
	p := EmbedParams{Frames: 120, ImgSize: 24, Workers: 2, Seed: 5}
	tables := Fig5BeamProfile(p)
	if len(tables) != 2 {
		t.Fatalf("Fig5 tables = %d", len(tables))
	}
	if len(tables[0].Rows) != 3 || len(tables[1].Rows) != 1 {
		t.Fatal("Fig5 table shapes wrong")
	}
	t6 := Fig6Diffraction(p)
	if len(t6.Rows) != 1 {
		t.Fatal("Fig6 rows wrong")
	}
	purity := parseF(t, t6.Rows[0][3])
	if purity < 0.6 {
		t.Fatalf("smoke-test purity %v suspiciously low", purity)
	}
}

func TestRuntimeStudySmoke(t *testing.T) {
	p := RuntimeParams{Frames: 120, ImgSize: 32, CropSize: 24, Workers: []int{1, 2}, Seed: 6}
	tb := RuntimeStudy(p)
	if len(tb.Rows) != 2 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	for _, r := range tb.Rows {
		if hz := parseF(t, r[2]); hz <= 0 {
			t.Fatalf("non-positive throughput %v", hz)
		}
	}
}

func TestScalingDataShards(t *testing.T) {
	p := tinyScaling()
	shards := scalingData(p, 4)
	if len(shards) != 4 {
		t.Fatalf("shards = %d", len(shards))
	}
	full := synth.Concat(shards)
	if full.RowsN != 128 {
		t.Fatalf("concat rows = %d", full.RowsN)
	}
}
