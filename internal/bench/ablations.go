package bench

import (
	"fmt"
	"math"
	"time"

	"arams/internal/mat"
	"arams/internal/parallel"
	"arams/internal/rng"
	"arams/internal/sketch"
	"arams/internal/synth"
)

// EstimatorSweep compares the three Frobenius-residual estimators the
// rank-adaptation heuristic can use: the paper's Gaussian probes, the
// Hutchinson stochastic trace estimator, and Hutch++ (the future-work
// directions named in §IV-A.2), across probe budgets.
func EstimatorSweep(seed uint64) *Table {
	t := &Table{
		Title: "Alg.1 extension: estimator comparison (paper's future work)",
		Note: "mean |est−exact|/exact per probe budget ν; expect " +
			"hutch++ ≤ hutchinson ≤ gaussian on decaying spectra",
		Header: []string{"nu", "gaussian", "hutchinson", "hutch++"},
	}
	ds := synth.Generate(synth.Params{
		N: 240, D: 120, Rank: 80, Decay: synth.Exponential, Seed: seed,
	})
	vfull := ds.V.T()
	vt := mat.New(10, 120)
	for i := 0; i < 10; i++ {
		copy(vt.Row(i), vfull.Row(i))
	}
	exact := sketch.ProjErrSq(ds.A, vt)
	const trials = 60
	for _, nu := range []int{3, 6, 12, 24, 48} {
		row := make([]interface{}, 0, 4)
		row = append(row, nu)
		for _, kind := range []sketch.EstimatorKind{
			sketch.GaussianProbe, sketch.Hutchinson, sketch.HutchPP,
		} {
			var dev float64
			for tr := 0; tr < trials; tr++ {
				est := sketch.EstimateResidualSqKind(kind, ds.A, vt, nu,
					rng.NewStream(uint64(tr), uint64(nu)*7+uint64(kind)))
				dev += math.Abs(est-exact) / exact
			}
			row = append(row, dev/trials)
		}
		t.Append(row...)
	}
	return t
}

// AritySweep measures how the tree-merge branching factor affects the
// merge critical path and accuracy — the generalization covered by the
// appendix's arity-a mergeability proof.
func AritySweep(p ScalingParams) *Table {
	t := &Table{
		Title: "Tree-merge ablation: branching factor (appendix arity-a proof)",
		Note: "higher arity → fewer rounds but more sequential merges per round; " +
			"arity 2 minimizes the critical path, errors stay equivalent",
		Header: []string{"arity", "merge_rounds", "critpath_ms", "rel_err"},
	}
	cores := p.Cores[len(p.Cores)-1]
	fine := scalingData(p, cores)
	full := synth.Concat(fine)
	for _, arity := range []int{2, 4, 8, 16} {
		mats := matsOf(fine)
		global, stats := parallel.RunSimulatedArity(mats,
			parallel.FDSketcher(p.Ell, sketch.Options{}), parallel.TreeMerge, arity)
		basis := global.Basis(global.Ell())
		t.Append(arity, stats.MergeRounds,
			stats.CriticalPath.Seconds()*1000, sketch.RelProjErr(full, basis))
	}
	return t
}

// SVDBackendSweep times the two rotation kernels on FD-shaped buffers —
// the substitution the DESIGN.md documents (Gram trick vs one-sided
// Jacobi).
func SVDBackendSweep(seed uint64) *Table {
	t := &Table{
		Title:  "FD rotation kernel: Gram-trick SVD vs one-sided Jacobi",
		Note:   "gram cost grows linearly in d; jacobi super-linearly — gram is the default",
		Header: []string{"buffer", "gram_ms", "jacobi_ms", "speedup", "max_sigma_dev"},
	}
	g := rng.New(seed)
	for _, shape := range []struct{ m, d int }{{16, 256}, {32, 1024}, {64, 4096}} {
		buf := mat.RandGaussian(shape.m, shape.d, g)
		t0 := time.Now()
		_, sG, _ := mat.SVDGram(buf)
		gramMs := time.Since(t0).Seconds() * 1000
		t1 := time.Now()
		_, sJ, _ := mat.SVD(buf)
		jacMs := time.Since(t1).Seconds() * 1000
		var dev float64
		for i := range sG {
			if d := math.Abs(sG[i]-sJ[i]) / sJ[0]; d > dev {
				dev = d
			}
		}
		t.Append(formatShape(shape.m, shape.d), gramMs, jacMs, jacMs/gramMs, dev)
	}
	return t
}

func formatShape(m, d int) string {
	return fmt.Sprintf("%dx%d", m, d)
}
