package hdbscan

import "testing"

func BenchmarkCluster(b *testing.B) {
	x, _ := blobs(4, 100, 20, 0.5, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Cluster(x, 5, 20)
	}
}
