// Package hdbscan implements HDBSCAN* (Campello, Moulavi & Sander
// 2013): hierarchical density-based clustering by building the minimum
// spanning tree of the mutual-reachability graph, condensing the
// resulting single-linkage hierarchy, and selecting clusters by excess
// of mass. The paper's artifact environment ships HDBSCAN alongside
// OPTICS as the clustering stage; this package provides it as an
// alternative backend with no tuning radius — only minClusterSize.
package hdbscan

import (
	"math"
	"sort"

	"arams/internal/knn"
	"arams/internal/mat"
)

// Noise is the label assigned to unclustered points.
const Noise = -1

// Result carries the flat clustering and per-point membership scores.
type Result struct {
	Labels []int
	// Probabilities are per-point cluster-membership strengths in
	// [0, 1]: λ_point/λ_max within the assigned cluster; 0 for noise.
	Probabilities []float64
	// NumClusters is the number of selected clusters.
	NumClusters int
}

// Cluster runs HDBSCAN* on the rows of x. minPts sets the core-distance
// neighborhood (density smoothing), minClusterSize the smallest cluster
// kept in the condensed tree; minClusterSize <= 0 defaults to minPts.
func Cluster(x *mat.Matrix, minPts, minClusterSize int) *Result {
	n := x.RowsN
	res := &Result{
		Labels:        make([]int, n),
		Probabilities: make([]float64, n),
	}
	for i := range res.Labels {
		res.Labels[i] = Noise
	}
	if minPts < 2 {
		minPts = 2
	}
	if minClusterSize <= 0 {
		minClusterSize = minPts
	}
	if n < 2 || n < minClusterSize {
		return res
	}

	core := coreDistances(x, minPts)
	edges := mstEdges(x, core)
	link := buildLinkage(edges, n)
	ct := condense(link, n, minClusterSize)
	stability := ct.stabilities()
	selected := ct.selectClusters(stability)
	ct.label(selected, res)
	return res
}

// coreDistances returns each point's distance to its (minPts−1)-th
// nearest other point (minPts counts the point itself).
func coreDistances(x *mat.Matrix, minPts int) []float64 {
	n := x.RowsN
	k := minPts - 1
	if k >= n {
		k = n - 1
	}
	g := knn.BruteForce(x, k)
	core := make([]float64, n)
	for i := 0; i < n; i++ {
		nbs := g.Neighbors[i]
		if len(nbs) > 0 {
			core[i] = nbs[len(nbs)-1].Dist
		}
	}
	return core
}

type edge struct {
	a, b int
	w    float64
}

// mstEdges builds the minimum spanning tree of the complete graph under
// mutual-reachability distance with dense Prim's algorithm, O(n²) —
// appropriate since the distance matrix is implicit anyway.
func mstEdges(x *mat.Matrix, core []float64) []edge {
	n := x.RowsN
	inTree := make([]bool, n)
	dist := make([]float64, n)
	from := make([]int, n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	edges := make([]edge, 0, n-1)
	current := 0
	inTree[0] = true
	for len(edges) < n-1 {
		// Relax against the newly added vertex.
		cr := x.Row(current)
		for j := 0; j < n; j++ {
			if inTree[j] {
				continue
			}
			d := math.Sqrt(knn.DistSq(cr, x.Row(j)))
			if core[current] > d {
				d = core[current]
			}
			if core[j] > d {
				d = core[j]
			}
			if d < dist[j] {
				dist[j] = d
				from[j] = current
			}
		}
		// Pick the closest outside vertex.
		best := -1
		for j := 0; j < n; j++ {
			if !inTree[j] && (best < 0 || dist[j] < dist[best]) {
				best = j
			}
		}
		inTree[best] = true
		edges = append(edges, edge{a: from[best], b: best, w: dist[best]})
		current = best
	}
	return edges
}

// linkage is the single-linkage dendrogram: node ids 0..n-1 are points,
// n..2n-2 internal merges in ascending distance order.
type linkage struct {
	n     int
	left  []int
	right []int
	dist  []float64
	size  []int
}

func buildLinkage(edges []edge, n int) *linkage {
	sort.Slice(edges, func(i, j int) bool { return edges[i].w < edges[j].w })
	l := &linkage{
		n:     n,
		left:  make([]int, n-1),
		right: make([]int, n-1),
		dist:  make([]float64, n-1),
		size:  make([]int, n-1),
	}
	// Union-find tracking the current dendrogram node of each set.
	parent := make([]int, 2*n-1)
	node := make([]int, 2*n-1)
	for i := range parent {
		parent[i] = i
		node[i] = i
	}
	var find func(int) int
	find = func(v int) int {
		for parent[v] != v {
			parent[v] = parent[parent[v]]
			v = parent[v]
		}
		return v
	}
	sizeOf := func(id int) int {
		if id < n {
			return 1
		}
		return l.size[id-n]
	}
	for i, e := range edges {
		ra, rb := find(e.a), find(e.b)
		na, nb := node[ra], node[rb]
		newID := n + i
		l.left[i] = na
		l.right[i] = nb
		l.dist[i] = e.w
		l.size[i] = sizeOf(na) + sizeOf(nb)
		parent[ra] = rb
		node[find(rb)] = newID
	}
	return l
}

// condensedRow is one edge of the condensed tree: child is either a
// point (< n) or a cluster id (>= n-offset encoding below uses separate
// slices instead).
type condensedRow struct {
	parent  int // cluster label
	child   int // point index when isPoint, else cluster label
	lambda  float64
	size    int
	isPoint bool
}

type condensedTree struct {
	n        int
	rows     []condensedRow
	birth    map[int]float64 // cluster label → λ at creation
	children map[int][]int   // cluster label → child cluster labels
	maxLabel int
}

// condense walks the dendrogram from the root, keeping only splits
// where both sides have at least minClusterSize points; smaller sides'
// points "fall out" of their parent cluster at the split's λ = 1/dist.
func condense(l *linkage, n, minClusterSize int) *condensedTree {
	ct := &condensedTree{
		n:        n,
		birth:    map[int]float64{0: 0},
		children: map[int][]int{},
	}
	root := 2*n - 2
	relabel := map[int]int{root: 0}
	next := 1

	type item struct{ node int }
	stack := []item{{root}}
	// ignore marks dendrogram subtrees already emitted as fallen
	// points.
	for len(stack) > 0 {
		it := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		nodeID := it.node
		if nodeID < n {
			continue // leaf reached directly (handled by parents)
		}
		i := nodeID - n
		label := relabel[nodeID]
		lambda := math.Inf(1)
		if l.dist[i] > 0 {
			lambda = 1 / l.dist[i]
		}
		left, right := l.left[i], l.right[i]
		ls, rs := nodeSize(l, left), nodeSize(l, right)
		switch {
		case ls >= minClusterSize && rs >= minClusterSize:
			// True split: both children become new clusters.
			for _, ch := range []struct {
				node, size int
			}{{left, ls}, {right, rs}} {
				childLabel := next
				next++
				relabel[ch.node] = childLabel
				ct.rows = append(ct.rows, condensedRow{
					parent: label, child: childLabel, lambda: lambda, size: ch.size,
				})
				ct.birth[childLabel] = lambda
				ct.children[label] = append(ct.children[label], childLabel)
				stack = append(stack, item{ch.node})
			}
		case ls < minClusterSize && rs < minClusterSize:
			// Cluster dissolves: every point falls out here.
			for _, p := range leavesOf(l, left) {
				ct.rows = append(ct.rows, condensedRow{
					parent: label, child: p, lambda: lambda, size: 1, isPoint: true,
				})
			}
			for _, p := range leavesOf(l, right) {
				ct.rows = append(ct.rows, condensedRow{
					parent: label, child: p, lambda: lambda, size: 1, isPoint: true,
				})
			}
		default:
			// The big side continues as the same cluster; the small
			// side's points fall out.
			big, small := left, right
			if ls < minClusterSize {
				big, small = right, left
			}
			relabel[big] = label
			for _, p := range leavesOf(l, small) {
				ct.rows = append(ct.rows, condensedRow{
					parent: label, child: p, lambda: lambda, size: 1, isPoint: true,
				})
			}
			stack = append(stack, item{big})
		}
	}
	ct.maxLabel = next - 1
	return ct
}

func nodeSize(l *linkage, id int) int {
	if id < l.n {
		return 1
	}
	return l.size[id-l.n]
}

// leavesOf collects the point indices under a dendrogram node.
func leavesOf(l *linkage, id int) []int {
	var out []int
	stack := []int{id}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if v < l.n {
			out = append(out, v)
			continue
		}
		stack = append(stack, l.left[v-l.n], l.right[v-l.n])
	}
	return out
}

// stabilities computes Σ (λ_child − λ_birth(parent)) · size per
// cluster.
func (ct *condensedTree) stabilities() map[int]float64 {
	st := map[int]float64{}
	for _, r := range ct.rows {
		birth := ct.birth[r.parent]
		lam := r.lambda
		if math.IsInf(lam, 1) {
			// Duplicate points merge at distance 0; cap their
			// contribution to keep stabilities finite and comparable.
			lam = 1e12
		}
		st[r.parent] += (lam - birth) * float64(r.size)
	}
	return st
}

// selectClusters performs excess-of-mass selection: a cluster is chosen
// if its own stability exceeds the total stability of its chosen
// descendants. The root (label 0) is never selected, matching the
// standard allow_single_cluster=false behavior.
func (ct *condensedTree) selectClusters(stability map[int]float64) map[int]bool {
	selected := map[int]bool{}
	// Process labels in decreasing order: children before parents.
	for label := ct.maxLabel; label >= 1; label-- {
		kids := ct.children[label]
		var subtree float64
		for _, k := range kids {
			subtree += stability[k]
		}
		if len(kids) > 0 && subtree > stability[label] {
			stability[label] = subtree
			selected[label] = false
		} else {
			selected[label] = true
			ct.unselectDescendants(label, selected)
		}
	}
	return selected
}

func (ct *condensedTree) unselectDescendants(label int, selected map[int]bool) {
	for _, k := range ct.children[label] {
		selected[k] = false
		ct.unselectDescendants(k, selected)
	}
}

// label assigns each point the selected ancestor of the cluster it fell
// out of, with membership probability λ_point/λ_max(cluster).
func (ct *condensedTree) label(selected map[int]bool, res *Result) {
	// Parent links between clusters.
	clusterParent := map[int]int{}
	for _, r := range ct.rows {
		if !r.isPoint {
			clusterParent[r.child] = r.parent
		}
	}
	findSelected := func(c int) int {
		for {
			if selected[c] {
				return c
			}
			p, ok := clusterParent[c]
			if !ok {
				return -1
			}
			c = p
		}
	}
	// Map selected labels to dense output labels in birth order.
	var sel []int
	for c, on := range selected {
		if on {
			sel = append(sel, c)
		}
	}
	sort.Ints(sel)
	dense := map[int]int{}
	for i, c := range sel {
		dense[c] = i
	}
	res.NumClusters = len(sel)

	// λ_max per selected cluster, over member points.
	lamMax := map[int]float64{}
	type assignment struct {
		point   int
		cluster int
		lambda  float64
	}
	var assigns []assignment
	for _, r := range ct.rows {
		if !r.isPoint {
			continue
		}
		c := findSelected(r.parent)
		if c < 0 {
			continue
		}
		lam := r.lambda
		if math.IsInf(lam, 1) {
			lam = 1e12
		}
		assigns = append(assigns, assignment{point: r.child, cluster: c, lambda: lam})
		if lam > lamMax[c] {
			lamMax[c] = lam
		}
	}
	for _, a := range assigns {
		res.Labels[a.point] = dense[a.cluster]
		if lamMax[a.cluster] > 0 {
			res.Probabilities[a.point] = a.lambda / lamMax[a.cluster]
		}
	}
}
