package hdbscan

import (
	"math"
	"testing"

	"arams/internal/mat"
	"arams/internal/optics"
	"arams/internal/rng"
)

// blobs builds k Gaussian clusters of nPer points in 2-D.
func blobs(k, nPer int, radius, sigma float64, seed uint64) (*mat.Matrix, []int) {
	g := rng.New(seed)
	x := mat.New(k*nPer, 2)
	truth := make([]int, k*nPer)
	for c := 0; c < k; c++ {
		angle := 2 * math.Pi * float64(c) / float64(k)
		for i := 0; i < nPer; i++ {
			idx := c*nPer + i
			x.Set(idx, 0, radius*math.Cos(angle)+sigma*g.Norm())
			x.Set(idx, 1, radius*math.Sin(angle)+sigma*g.Norm())
			truth[idx] = c
		}
	}
	return x, truth
}

func TestRecoversBlobs(t *testing.T) {
	for _, k := range []int{2, 3, 5} {
		x, truth := blobs(k, 40, 20, 0.5, uint64(k))
		res := Cluster(x, 5, 10)
		if res.NumClusters != k {
			t.Errorf("k=%d: found %d clusters", k, res.NumClusters)
			continue
		}
		if ari := optics.ARI(res.Labels, truth); ari < 0.95 {
			t.Errorf("k=%d: ARI %v", k, ari)
		}
	}
}

func TestUnevenDensities(t *testing.T) {
	// A tight blob and a loose blob — the scenario where a single
	// DBSCAN eps fails but HDBSCAN's hierarchy succeeds.
	g := rng.New(10)
	x := mat.New(120, 2)
	truth := make([]int, 120)
	for i := 0; i < 60; i++ {
		x.Set(i, 0, 0.1*g.Norm())
		x.Set(i, 1, 0.1*g.Norm())
	}
	for i := 60; i < 120; i++ {
		x.Set(i, 0, 30+2.0*g.Norm())
		x.Set(i, 1, 2.0*g.Norm())
		truth[i] = 1
	}
	res := Cluster(x, 5, 15)
	if res.NumClusters != 2 {
		t.Fatalf("found %d clusters, want 2", res.NumClusters)
	}
	if ari := optics.ARI(res.Labels, truth); ari < 0.9 {
		t.Fatalf("uneven densities ARI %v", ari)
	}
}

func TestNoiseRejected(t *testing.T) {
	g := rng.New(11)
	x := mat.New(85, 2)
	for i := 0; i < 80; i++ {
		c := float64(i % 2 * 30)
		x.Set(i, 0, c+0.4*g.Norm())
		x.Set(i, 1, 0.4*g.Norm())
	}
	// 5 scattered far-away singletons.
	for i := 80; i < 85; i++ {
		x.Set(i, 0, -100-40*float64(i-80))
		x.Set(i, 1, 200+60*float64(i-80))
	}
	res := Cluster(x, 5, 10)
	for i := 80; i < 85; i++ {
		if res.Labels[i] != Noise {
			t.Fatalf("scatter point %d labeled %d", i, res.Labels[i])
		}
		if res.Probabilities[i] != 0 {
			t.Fatalf("noise point %d has probability %v", i, res.Probabilities[i])
		}
	}
	if res.NumClusters != 2 {
		t.Fatalf("found %d clusters, want 2", res.NumClusters)
	}
}

func TestProbabilitiesRange(t *testing.T) {
	x, _ := blobs(3, 30, 15, 0.5, 12)
	res := Cluster(x, 5, 10)
	for i, p := range res.Probabilities {
		if p < 0 || p > 1 {
			t.Fatalf("probability[%d] = %v", i, p)
		}
		if res.Labels[i] != Noise && p == 0 {
			t.Fatalf("clustered point %d has zero probability", i)
		}
	}
	// Core points (high λ) should have higher membership than fringe
	// points on average: max probability must be 1.
	max := 0.0
	for _, p := range res.Probabilities {
		if p > max {
			max = p
		}
	}
	if math.Abs(max-1) > 1e-12 {
		t.Fatalf("max probability %v, want 1", max)
	}
}

func TestLabelsDense(t *testing.T) {
	x, _ := blobs(4, 30, 25, 0.4, 13)
	res := Cluster(x, 5, 10)
	seen := map[int]bool{}
	for _, l := range res.Labels {
		if l != Noise {
			seen[l] = true
		}
	}
	for c := 0; c < res.NumClusters; c++ {
		if !seen[c] {
			t.Fatalf("label %d unused; labels not dense", c)
		}
	}
	for l := range seen {
		if l >= res.NumClusters {
			t.Fatalf("label %d beyond NumClusters %d", l, res.NumClusters)
		}
	}
}

func TestTinyInputs(t *testing.T) {
	res := Cluster(mat.New(0, 2), 5, 5)
	if len(res.Labels) != 0 || res.NumClusters != 0 {
		t.Fatal("empty input broken")
	}
	one := mat.FromRows([][]float64{{1, 2}})
	res = Cluster(one, 5, 5)
	if res.Labels[0] != Noise {
		t.Fatal("single point should be noise")
	}
	// Fewer points than minClusterSize: all noise.
	x, _ := blobs(1, 8, 0, 0.3, 14)
	res = Cluster(x, 3, 20)
	for _, l := range res.Labels {
		if l != Noise {
			t.Fatal("undersized dataset produced clusters")
		}
	}
}

func TestDuplicatePoints(t *testing.T) {
	// Many duplicates (zero distances) must not panic or NaN.
	x := mat.New(40, 2)
	for i := 0; i < 20; i++ {
		x.Set(i, 0, 1)
		x.Set(i, 1, 1)
	}
	for i := 20; i < 40; i++ {
		x.Set(i, 0, 50)
		x.Set(i, 1, 50)
	}
	res := Cluster(x, 3, 8)
	if res.NumClusters != 2 {
		t.Fatalf("duplicates: %d clusters, want 2", res.NumClusters)
	}
	for i, p := range res.Probabilities {
		if math.IsNaN(p) {
			t.Fatalf("probability[%d] is NaN", i)
		}
	}
}

func TestAgreesWithOPTICSOnCleanBlobs(t *testing.T) {
	// Independent implementations must agree on unambiguous data.
	x, truth := blobs(3, 40, 25, 0.4, 15)
	h := Cluster(x, 5, 20)
	o := optics.Run(x, 5, math.Inf(1)).ExtractDBSCAN(2.0)
	if ari := optics.ARI(h.Labels, o); ari < 0.95 {
		t.Fatalf("HDBSCAN vs OPTICS ARI %v", ari)
	}
	if ari := optics.ARI(h.Labels, truth); ari < 0.95 {
		t.Fatalf("HDBSCAN vs truth ARI %v", ari)
	}
}

func TestDeterministic(t *testing.T) {
	x, _ := blobs(3, 30, 20, 0.5, 16)
	a := Cluster(x, 5, 10)
	b := Cluster(x, 5, 10)
	for i := range a.Labels {
		if a.Labels[i] != b.Labels[i] {
			t.Fatal("HDBSCAN not deterministic")
		}
	}
}
