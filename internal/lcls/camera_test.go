package lcls

import (
	"math"
	"testing"

	"arams/internal/imgproc"
)

func TestCameraApply(t *testing.T) {
	cm := NewCameraModel(CameraConfig{W: 32, H: 32, HotFrac: 0.01, DeadFrac: 0.01, Seed: 1})
	bg := NewBeamGenerator(BeamConfig{Size: 32, NoiseLevel: -1, Seed: 2})
	clean := bg.Next().Image
	raw := cm.Apply(clean)
	// Pedestal visible in dark corners.
	if raw.Pix[0] < 0.005 && raw.Pix[32*32-1] < 0.005 {
		t.Fatal("pedestal not applied")
	}
	hot, dead := cm.NumDefects()
	if hot == 0 || dead == 0 {
		t.Fatalf("defects missing: hot=%d dead=%d", hot, dead)
	}
	// Hot pixels rail to the configured value.
	railed := 0
	for _, v := range raw.Pix {
		if v == 10 {
			railed++
		}
	}
	if railed < hot {
		t.Fatalf("only %d railed pixels for %d hot", railed, hot)
	}
	// Original untouched.
	if clean.Max() > 1.01 {
		t.Fatal("Apply mutated the input frame")
	}
}

func TestCameraDeterministic(t *testing.T) {
	a := NewCameraModel(CameraConfig{W: 16, H: 16, Seed: 3})
	b := NewCameraModel(CameraConfig{W: 16, H: 16, Seed: 3})
	im := imgproc.NewImage(16, 16)
	for i := range im.Pix {
		im.Pix[i] = float64(i % 7)
	}
	ra, rb := a.Apply(im), b.Apply(im)
	for i := range ra.Pix {
		if ra.Pix[i] != rb.Pix[i] {
			t.Fatal("same-seed cameras differ")
		}
	}
}

func TestBadPixelMaskRemovesDefects(t *testing.T) {
	cm := NewCameraModel(CameraConfig{W: 32, H: 32, HotFrac: 0.02, Seed: 4})
	mask := cm.BadPixelMask()
	hot, dead := cm.NumDefects()
	if mask.NumBad() != hot+dead {
		t.Fatalf("mask covers %d pixels, want %d", mask.NumBad(), hot+dead)
	}
	bg := NewBeamGenerator(BeamConfig{Size: 32, NoiseLevel: -1, Seed: 5})
	raw := cm.Apply(bg.Next().Image)
	pre := imgproc.Preprocessor{Mask: mask, Pedestal: cm.Pedestal}
	cleaned := pre.Apply(raw)
	// No railed pixels survive masking.
	for i, v := range cleaned.Pix {
		if v >= 10 {
			t.Fatalf("hot pixel %d survived masking: %v", i, v)
		}
	}
	// Pedestal subtracted: dark corner ~0.
	if cleaned.Pix[0] > 0.01 {
		t.Fatalf("pedestal not removed: corner = %v", cleaned.Pix[0])
	}
}

func TestMaskedPreprocessingRestoresShapeStats(t *testing.T) {
	// Center of mass measured after camera + calibration must be close
	// to the clean frame's, despite hot pixels that would otherwise
	// drag it.
	cm := NewCameraModel(CameraConfig{W: 48, H: 48, HotFrac: 0.005, HotValue: 50, Seed: 6})
	bg := NewBeamGenerator(BeamConfig{Size: 48, NoiseLevel: -1, Jitter: 6, Seed: 7})
	mask := cm.BadPixelMask()
	pre := imgproc.Preprocessor{Mask: mask, Pedestal: cm.Pedestal}
	for i := 0; i < 10; i++ {
		f := bg.Next()
		clean := imgproc.ComputeStats(f.Image)
		raw := cm.Apply(f.Image)
		noisy := imgproc.ComputeStats(raw)
		fixed := imgproc.ComputeStats(pre.Apply(raw))
		errNoisy := math.Hypot(noisy.OffsetX-clean.OffsetX, noisy.OffsetY-clean.OffsetY)
		errFixed := math.Hypot(fixed.OffsetX-clean.OffsetX, fixed.OffsetY-clean.OffsetY)
		if errFixed > errNoisy+0.2 {
			t.Fatalf("frame %d: calibration made COM worse: %v vs %v", i, errFixed, errNoisy)
		}
		if errFixed > 1.5 {
			t.Fatalf("frame %d: calibrated COM error %v too large", i, errFixed)
		}
	}
}

func TestMaskSizeMismatchPanics(t *testing.T) {
	m := imgproc.NewMask(4, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("mask size mismatch did not panic")
		}
	}()
	m.Apply(imgproc.NewImage(5, 5))
}

func TestCameraSizeMismatchPanics(t *testing.T) {
	cm := NewCameraModel(CameraConfig{W: 8, H: 8, Seed: 8})
	defer func() {
		if recover() == nil {
			t.Fatal("camera size mismatch did not panic")
		}
	}()
	cm.Apply(imgproc.NewImage(9, 9))
}
