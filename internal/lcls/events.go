package lcls

import (
	"sort"

	"arams/internal/imgproc"
	"arams/internal/rng"
)

// Readout is one detector's contribution to a shot, tagged by the
// timing system's pulse ID.
type Readout struct {
	PulseID  uint64
	Detector string
	Image    *imgproc.Image
}

// Event pools every detector's readout for one shot — the event objects
// the LCLS data system builds from timestamped streams.
type Event struct {
	PulseID uint64
	Images  map[string]*imgproc.Image
}

// EventBuilder assembles readouts arriving in arbitrary order into
// complete events keyed by pulse ID. Events whose pulse ID falls more
// than window behind the newest seen pulse are flushed incomplete
// (counted in Dropped), bounding memory like a real event builder's
// time window.
type EventBuilder struct {
	detectors map[string]bool
	window    uint64
	pending   map[uint64]map[string]*imgproc.Image
	maxPulse  uint64
	built     int
	dropped   int
}

// NewEventBuilder creates a builder expecting one readout per listed
// detector per pulse. window is the pulse-ID distance after which an
// incomplete event is abandoned (0 means never).
func NewEventBuilder(detectors []string, window uint64) *EventBuilder {
	if len(detectors) == 0 {
		panic("lcls: event builder needs at least one detector")
	}
	set := make(map[string]bool, len(detectors))
	for _, d := range detectors {
		set[d] = true
	}
	return &EventBuilder{
		detectors: set,
		window:    window,
		pending:   map[uint64]map[string]*imgproc.Image{},
	}
}

// Push offers one readout; it returns the completed event and true when
// this readout was the last missing piece of its pulse.
func (eb *EventBuilder) Push(r Readout) (Event, bool) {
	if !eb.detectors[r.Detector] {
		return Event{}, false // unknown detector: ignore, as DAQ would
	}
	if r.PulseID > eb.maxPulse {
		eb.maxPulse = r.PulseID
		eb.expire()
	}
	slot, ok := eb.pending[r.PulseID]
	if !ok {
		slot = make(map[string]*imgproc.Image, len(eb.detectors))
		eb.pending[r.PulseID] = slot
	}
	slot[r.Detector] = r.Image
	if len(slot) == len(eb.detectors) {
		delete(eb.pending, r.PulseID)
		eb.built++
		return Event{PulseID: r.PulseID, Images: slot}, true
	}
	return Event{}, false
}

// expire drops pending events that fell outside the pulse window.
func (eb *EventBuilder) expire() {
	if eb.window == 0 {
		return
	}
	for id := range eb.pending {
		if id+eb.window < eb.maxPulse {
			delete(eb.pending, id)
			eb.dropped++
		}
	}
}

// Built returns the number of complete events assembled.
func (eb *EventBuilder) Built() int { return eb.built }

// Dropped returns the number of incomplete events abandoned.
func (eb *EventBuilder) Dropped() int { return eb.dropped }

// Pending returns the number of incomplete events currently held.
func (eb *EventBuilder) Pending() int { return len(eb.pending) }

// StreamConfig configures a simulated multi-detector shot stream.
type StreamConfig struct {
	// Pulses is the number of shots to emit.
	Pulses int
	// Jumble is the maximum displacement, in readouts, applied when
	// shuffling the arrival order — simulating detectors' independent
	// readout latencies. 0 delivers in order.
	Jumble int
	// DropProb is the probability that any single readout is lost.
	DropProb float64
	Seed     uint64
}

// BeamDetector and AreaDetector are the detector names used by the
// simulated stream, mirroring an upstream diagnostic camera and a
// downstream large area detector.
const (
	BeamDetector = "XppEndstation.0:Alvium.1"
	AreaDetector = "XppEndstation.0:Epix2M.0"
)

// Stream produces the interleaved, possibly jumbled readout sequence of
// a run: for each pulse, one beam-profile readout and one diffraction
// readout. It returns the readouts and the per-pulse ground truth.
func Stream(cfg StreamConfig, beam *BeamGenerator, diff *DiffractionGenerator) ([]Readout, []BeamFrame, []DiffractionFrame) {
	g := rng.New(cfg.Seed)
	readouts := make([]Readout, 0, 2*cfg.Pulses)
	beams := make([]BeamFrame, cfg.Pulses)
	diffs := make([]DiffractionFrame, cfg.Pulses)
	for p := 0; p < cfg.Pulses; p++ {
		id := uint64(p + 1)
		beams[p] = beam.Next()
		diffs[p] = diff.Next()
		for _, r := range []Readout{
			{PulseID: id, Detector: BeamDetector, Image: beams[p].Image},
			{PulseID: id, Detector: AreaDetector, Image: diffs[p].Image},
		} {
			if cfg.DropProb > 0 && g.Float64() < cfg.DropProb {
				continue
			}
			readouts = append(readouts, r)
		}
	}
	if cfg.Jumble > 0 {
		jumble(readouts, cfg.Jumble, g)
	}
	return readouts, beams, diffs
}

// jumble applies a bounded random displacement to each readout's
// position: sort by original position plus uniform noise in
// [0, maxShift].
func jumble(rs []Readout, maxShift int, g *rng.RNG) {
	keys := make([]float64, len(rs))
	for i := range keys {
		keys[i] = float64(i) + float64(g.Intn(maxShift+1))
	}
	idx := make([]int, len(rs))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return keys[idx[a]] < keys[idx[b]] })
	out := make([]Readout, len(rs))
	for i, j := range idx {
		out[i] = rs[j]
	}
	copy(rs, out)
}
