// Package lcls simulates the parts of the Linac Coherent Light Source
// data system that the paper's experiments depend on but that are not
// publicly available: shot-to-shot X-ray beam-profile images from an
// upstream diagnostic camera, diffraction-ring images from a large area
// detector, detector noise, and the pulse-ID timing system that pools
// per-detector readouts into events at the machine repetition rate.
//
// The generators expose their latent ground-truth factors (beam
// center-of-mass offset, circularity, lobe structure, diffraction
// quadrant weights) so the reproduction can verify quantitatively what
// the paper shows visually in Figs. 5 and 6: that the unsupervised
// pipeline organizes images by exactly these factors.
package lcls

import (
	"math"

	"arams/internal/imgproc"
	"arams/internal/rng"
)

// BeamParams are the generative factors of one simulated beam profile.
type BeamParams struct {
	CenterX, CenterY float64 // beam jitter, pixels from image center
	WidthX, WidthY   float64 // 1/e² half-widths, pixels
	Theta            float64 // rotation of the principal axes, radians
	ModeM, ModeN     int     // Hermite–Gaussian transverse mode indices
	Exotic           bool    // heavily distorted outlier shot
}

// Circularity returns min(w)/max(w), the factor the paper's Fig. 5
// Y-axis organizes (1 = round, → 0 elongated).
func (p BeamParams) Circularity() float64 {
	a, b := p.WidthX, p.WidthY
	if a > b {
		a, b = b, a
	}
	if b == 0 {
		return 0
	}
	return a / b
}

// BeamFrame is one simulated diagnostic-camera shot.
type BeamFrame struct {
	Image  *imgproc.Image
	Params BeamParams
}

// BeamConfig controls the beam-profile generator.
type BeamConfig struct {
	Size       int     // square image side, pixels (default 64)
	BaseWidth  float64 // nominal beam half-width, pixels (default Size/8)
	Jitter     float64 // std of center jitter, pixels (default Size/12)
	ElongSigma float64 // lognormal σ of the x/y width ratio (default 0.3)
	ModeProb   float64 // probability of a higher-order mode (default 0.25)
	ExoticFrac float64 // fraction of exotic outlier shots (default 0.02)
	NoiseLevel float64 // Gaussian read noise std relative to peak (default 0.01)
	PhotonPeak float64 // expected photons at peak for shot noise; 0 disables
	Seed       uint64
}

func (c BeamConfig) withDefaults() BeamConfig {
	if c.Size <= 0 {
		c.Size = 64
	}
	if c.BaseWidth <= 0 {
		c.BaseWidth = float64(c.Size) / 8
	}
	if c.Jitter < 0 {
		c.Jitter = 0
	} else if c.Jitter == 0 {
		c.Jitter = float64(c.Size) / 12
	}
	if c.ElongSigma <= 0 {
		c.ElongSigma = 0.3
	}
	if c.ModeProb < 0 {
		c.ModeProb = 0
	} else if c.ModeProb == 0 {
		c.ModeProb = 0.25
	}
	if c.ExoticFrac < 0 {
		c.ExoticFrac = 0
	}
	if c.NoiseLevel < 0 {
		c.NoiseLevel = 0
	} else if c.NoiseLevel == 0 {
		c.NoiseLevel = 0.01
	}
	return c
}

// BeamGenerator produces a deterministic stream of beam profiles.
type BeamGenerator struct {
	cfg BeamConfig
	g   *rng.RNG
}

// NewBeamGenerator creates a generator from the config (zero fields get
// defaults).
func NewBeamGenerator(cfg BeamConfig) *BeamGenerator {
	c := cfg.withDefaults()
	return &BeamGenerator{cfg: c, g: rng.New(c.Seed)}
}

// Size returns the side length of generated images.
func (bg *BeamGenerator) Size() int { return bg.cfg.Size }

// Next generates one shot.
func (bg *BeamGenerator) Next() BeamFrame {
	c := bg.cfg
	g := bg.g
	p := BeamParams{
		CenterX: c.Jitter * g.Norm(),
		CenterY: c.Jitter * g.Norm(),
		Theta:   (g.Float64() - 0.5) * math.Pi / 4,
	}
	ratio := math.Exp(c.ElongSigma * g.Norm())
	p.WidthX = c.BaseWidth * ratio
	p.WidthY = c.BaseWidth / ratio
	if g.Float64() < c.ModeProb {
		// Low-order multi-lobe content: TEM01/TEM10/TEM11/TEM20/TEM02.
		switch g.Intn(5) {
		case 0:
			p.ModeM = 1
		case 1:
			p.ModeN = 1
		case 2:
			p.ModeM, p.ModeN = 1, 1
		case 3:
			p.ModeM = 2
		case 4:
			p.ModeN = 2
		}
	}
	if g.Float64() < c.ExoticFrac {
		p.Exotic = true
		// Exotic shots: extreme elongation plus high-order modes and a
		// large displacement — "deviate heavily from zero-order mode".
		p.WidthX *= 3
		p.WidthY *= 0.5
		p.ModeM = 2 + g.Intn(2)
		p.ModeN = 2 + g.Intn(2)
		p.CenterX *= 2
		p.CenterY *= 2
	}
	img := renderBeam(c.Size, p)
	addNoise(img, c.NoiseLevel, c.PhotonPeak, g)
	return BeamFrame{Image: img, Params: p}
}

// Generate produces n frames.
func (bg *BeamGenerator) Generate(n int) []BeamFrame {
	out := make([]BeamFrame, n)
	for i := range out {
		out[i] = bg.Next()
	}
	return out
}

// renderBeam rasterizes a Hermite–Gaussian mode with the given
// parameters; peak amplitude is normalized to 1 before noise.
func renderBeam(size int, p BeamParams) *imgproc.Image {
	im := imgproc.NewImage(size, size)
	c := float64(size-1) / 2
	cosT, sinT := math.Cos(p.Theta), math.Sin(p.Theta)
	var peak float64
	for y := 0; y < size; y++ {
		for x := 0; x < size; x++ {
			dx := float64(x) - c - p.CenterX
			dy := float64(y) - c - p.CenterY
			// Rotate into the beam frame.
			u := (dx*cosT + dy*sinT) / p.WidthX
			v := (-dx*sinT + dy*cosT) / p.WidthY
			amp := hermite(p.ModeM, math.Sqrt2*u) * hermite(p.ModeN, math.Sqrt2*v) *
				math.Exp(-(u*u + v*v))
			val := amp * amp // detector sees intensity
			im.Set(x, y, val)
			if val > peak {
				peak = val
			}
		}
	}
	if peak > 0 {
		inv := 1 / peak
		for i := range im.Pix {
			im.Pix[i] *= inv
		}
	}
	return im
}

// hermite evaluates the physicists' Hermite polynomial H_n(x) by the
// three-term recurrence.
func hermite(n int, x float64) float64 {
	switch n {
	case 0:
		return 1
	case 1:
		return 2 * x
	}
	hPrev, h := 1.0, 2*x
	for k := 1; k < n; k++ {
		hPrev, h = h, 2*x*h-2*float64(k)*hPrev
	}
	return h
}

// addNoise applies Poisson shot noise (if photonPeak > 0) followed by
// additive Gaussian read noise, clamping at zero as a real detector's
// zero-suppression would.
func addNoise(im *imgproc.Image, readNoise, photonPeak float64, g *rng.RNG) {
	for i, v := range im.Pix {
		if photonPeak > 0 {
			v = float64(g.Poisson(v*photonPeak)) / photonPeak
		}
		v += readNoise * g.Norm()
		if v < 0 {
			v = 0
		}
		im.Pix[i] = v
	}
}
