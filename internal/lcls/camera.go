package lcls

import (
	"arams/internal/imgproc"
	"arams/internal/rng"
)

// CameraModel simulates the systematic imperfections of a real area
// detector on top of the ideal rendered frames: an electronic pedestal,
// per-pixel gain variation, and stuck pixels (hot = railed high, dead =
// railed zero). A matching calibration mask lets the preprocessing
// chain remove them, as LCLS calibration constants do for real
// detectors.
type CameraModel struct {
	W, H     int
	Pedestal float64   // constant offset added to every pixel
	gain     []float64 // per-pixel multiplicative gain
	hot      []int     // flat indices of hot pixels
	dead     []int     // flat indices of dead pixels
	hotValue float64
}

// CameraConfig parameterizes CameraModel construction.
type CameraConfig struct {
	W, H      int
	Pedestal  float64 // default 0.02
	GainSigma float64 // per-pixel gain spread (default 0.03)
	HotFrac   float64 // fraction of hot pixels (default 0.001)
	DeadFrac  float64 // fraction of dead pixels (default 0.001)
	HotValue  float64 // value hot pixels rail to (default 10)
	Seed      uint64
}

// NewCameraModel builds a deterministic camera with fixed per-pixel
// defects.
func NewCameraModel(cfg CameraConfig) *CameraModel {
	if cfg.W <= 0 || cfg.H <= 0 {
		panic("lcls: camera needs positive dimensions")
	}
	if cfg.Pedestal == 0 {
		cfg.Pedestal = 0.02
	}
	if cfg.GainSigma == 0 {
		cfg.GainSigma = 0.03
	}
	if cfg.HotFrac == 0 {
		cfg.HotFrac = 0.001
	}
	if cfg.DeadFrac == 0 {
		cfg.DeadFrac = 0.001
	}
	if cfg.HotValue == 0 {
		cfg.HotValue = 10
	}
	g := rng.New(cfg.Seed)
	n := cfg.W * cfg.H
	cm := &CameraModel{
		W: cfg.W, H: cfg.H,
		Pedestal: cfg.Pedestal,
		gain:     make([]float64, n),
		hotValue: cfg.HotValue,
	}
	for i := range cm.gain {
		cm.gain[i] = 1 + cfg.GainSigma*g.Norm()
	}
	nHot := int(cfg.HotFrac * float64(n))
	nDead := int(cfg.DeadFrac * float64(n))
	perm := g.Perm(n)
	cm.hot = append(cm.hot, perm[:nHot]...)
	cm.dead = append(cm.dead, perm[nHot:nHot+nDead]...)
	return cm
}

// Apply returns a new frame with the camera's systematics imprinted.
func (cm *CameraModel) Apply(im *imgproc.Image) *imgproc.Image {
	if im.W != cm.W || im.H != cm.H {
		panic("lcls: camera/frame size mismatch")
	}
	out := im.Clone()
	for i, v := range out.Pix {
		out.Pix[i] = v*cm.gain[i] + cm.Pedestal
	}
	for _, i := range cm.hot {
		out.Pix[i] = cm.hotValue
	}
	for _, i := range cm.dead {
		out.Pix[i] = 0
	}
	return out
}

// BadPixelMask returns the calibration mask marking hot and dead
// pixels, the constant a real facility derives from dark runs.
func (cm *CameraModel) BadPixelMask() *imgproc.Mask {
	m := imgproc.NewMask(cm.W, cm.H)
	for _, i := range cm.hot {
		m.Bad[i] = true
	}
	for _, i := range cm.dead {
		m.Bad[i] = true
	}
	return m
}

// NumDefects returns the count of (hot, dead) pixels.
func (cm *CameraModel) NumDefects() (hot, dead int) {
	return len(cm.hot), len(cm.dead)
}
