package lcls

import (
	"testing"
)

func TestStreamDeterministic(t *testing.T) {
	mk := func() []Readout {
		beam := NewBeamGenerator(BeamConfig{Size: 8, Seed: 50})
		diff := NewDiffractionGenerator(DiffractionConfig{Size: 8, Seed: 51})
		rs, _, _ := Stream(StreamConfig{Pulses: 40, Jumble: 5, DropProb: 0.05, Seed: 52}, beam, diff)
		return rs
	}
	a, b := mk(), mk()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].PulseID != b[i].PulseID || a[i].Detector != b[i].Detector {
			t.Fatalf("readout %d differs", i)
		}
		for p := range a[i].Image.Pix {
			if a[i].Image.Pix[p] != b[i].Image.Pix[p] {
				t.Fatalf("readout %d pixels differ", i)
			}
		}
	}
}

func TestStreamPulseIDsCoverAllPulses(t *testing.T) {
	beam := NewBeamGenerator(BeamConfig{Size: 8, Seed: 53})
	diff := NewDiffractionGenerator(DiffractionConfig{Size: 8, Seed: 54})
	rs, _, _ := Stream(StreamConfig{Pulses: 30, Seed: 55}, beam, diff)
	seen := map[uint64]map[string]bool{}
	for _, r := range rs {
		if seen[r.PulseID] == nil {
			seen[r.PulseID] = map[string]bool{}
		}
		seen[r.PulseID][r.Detector] = true
	}
	if len(seen) != 30 {
		t.Fatalf("%d pulses seen, want 30", len(seen))
	}
	for id, dets := range seen {
		if !dets[BeamDetector] || !dets[AreaDetector] {
			t.Fatalf("pulse %d missing a detector: %v", id, dets)
		}
	}
}

func TestJumbleBoundedDisplacement(t *testing.T) {
	beam := NewBeamGenerator(BeamConfig{Size: 8, Seed: 56})
	diff := NewDiffractionGenerator(DiffractionConfig{Size: 8, Seed: 57})
	const jumble = 6
	rs, _, _ := Stream(StreamConfig{Pulses: 100, Jumble: jumble, Seed: 58}, beam, diff)
	// A readout for pulse p originally sits near position 2(p−1); the
	// jumble may move it by at most jumble slots (plus displacement of
	// others), so it can never appear jumble+small positions early.
	for pos, r := range rs {
		orig := 2 * (int(r.PulseID) - 1)
		if pos < orig-jumble {
			t.Fatalf("readout for pulse %d at %d, way before original %d", r.PulseID, pos, orig)
		}
	}
}
