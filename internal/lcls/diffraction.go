package lcls

import (
	"math"

	"arams/internal/imgproc"
	"arams/internal/rng"
)

// DiffractionParams are the generative factors of one diffraction shot:
// a scattering ring whose azimuthal intensity is weighted per quadrant
// — the factor the clusters of Fig. 6 differ by ("the clusters differ
// from one another based on the weight in each quadrant of the ring").
type DiffractionParams struct {
	Class     int        // index of the quadrant-weight class
	Quadrants [4]float64 // relative intensity per quadrant (NE, NW, SW, SE)
	Radius    float64    // ring radius, pixels
	RingWidth float64    // radial Gaussian width, pixels
}

// DiffractionFrame is one simulated area-detector shot.
type DiffractionFrame struct {
	Image  *imgproc.Image
	Params DiffractionParams
}

// DiffractionConfig controls the diffraction generator.
type DiffractionConfig struct {
	Size       int          // square image side (default 128)
	Classes    [][4]float64 // quadrant-weight classes; default: 4 distinct patterns
	Radius     float64      // mean ring radius (default Size/3)
	RadiusJit  float64      // std of shot-to-shot radius jitter (default 1.5 px)
	RingWidth  float64      // radial width (default 3 px)
	NoiseLevel float64      // read noise relative to peak (default 0.02)
	PhotonPeak float64      // photons at peak; 0 disables shot noise
	Seed       uint64
}

func (c DiffractionConfig) withDefaults() DiffractionConfig {
	if c.Size <= 0 {
		c.Size = 128
	}
	if len(c.Classes) == 0 {
		c.Classes = [][4]float64{
			{1.0, 1.0, 1.0, 1.0}, // isotropic ring
			{1.0, 0.2, 1.0, 0.2}, // horizontal lobes
			{0.2, 1.0, 0.2, 1.0}, // vertical lobes
			{1.0, 1.0, 0.2, 0.2}, // top-heavy
		}
	}
	if c.Radius <= 0 {
		c.Radius = float64(c.Size) / 3
	}
	if c.RadiusJit < 0 {
		c.RadiusJit = 0
	} else if c.RadiusJit == 0 {
		c.RadiusJit = 1.5
	}
	if c.RingWidth <= 0 {
		c.RingWidth = 3
	}
	if c.NoiseLevel < 0 {
		c.NoiseLevel = 0
	} else if c.NoiseLevel == 0 {
		c.NoiseLevel = 0.02
	}
	return c
}

// DiffractionGenerator produces a deterministic stream of diffraction
// frames with known class labels.
type DiffractionGenerator struct {
	cfg DiffractionConfig
	g   *rng.RNG
}

// NewDiffractionGenerator creates a generator (zero config fields get
// defaults).
func NewDiffractionGenerator(cfg DiffractionConfig) *DiffractionGenerator {
	c := cfg.withDefaults()
	return &DiffractionGenerator{cfg: c, g: rng.New(c.Seed)}
}

// Size returns the side length of generated images.
func (dg *DiffractionGenerator) Size() int { return dg.cfg.Size }

// NumClasses returns the number of quadrant-weight classes.
func (dg *DiffractionGenerator) NumClasses() int { return len(dg.cfg.Classes) }

// Next generates one frame with a uniformly random class.
func (dg *DiffractionGenerator) Next() DiffractionFrame {
	return dg.NextClass(dg.g.Intn(len(dg.cfg.Classes)))
}

// NextClass generates one frame of the given class.
func (dg *DiffractionGenerator) NextClass(class int) DiffractionFrame {
	c := dg.cfg
	g := dg.g
	p := DiffractionParams{
		Class:     class,
		Quadrants: c.Classes[class],
		Radius:    c.Radius + c.RadiusJit*g.Norm(),
		RingWidth: c.RingWidth,
	}
	// Small multiplicative jitter on the weights so shots within a
	// class are similar but not identical.
	for q := range p.Quadrants {
		p.Quadrants[q] *= math.Exp(0.08 * g.Norm())
	}
	img := renderRing(c.Size, p)
	addNoise(img, c.NoiseLevel, c.PhotonPeak, g)
	return DiffractionFrame{Image: img, Params: p}
}

// Generate produces n frames with random classes, returning frames and
// their ground-truth labels.
func (dg *DiffractionGenerator) Generate(n int) ([]DiffractionFrame, []int) {
	frames := make([]DiffractionFrame, n)
	labels := make([]int, n)
	for i := range frames {
		frames[i] = dg.Next()
		labels[i] = frames[i].Params.Class
	}
	return frames, labels
}

// renderRing rasterizes a quadrant-weighted scattering ring, peak
// normalized to 1, with a beamstop shadow at the center.
func renderRing(size int, p DiffractionParams) *imgproc.Image {
	im := imgproc.NewImage(size, size)
	c := float64(size-1) / 2
	var peak float64
	for y := 0; y < size; y++ {
		for x := 0; x < size; x++ {
			dx := float64(x) - c
			dy := float64(y) - c
			r := math.Hypot(dx, dy)
			radial := math.Exp(-(r - p.Radius) * (r - p.Radius) / (2 * p.RingWidth * p.RingWidth))
			w := p.Quadrants[quadrant(dx, dy)]
			// Smooth azimuthal blending near the quadrant boundaries
			// avoids unphysical hard edges.
			v := radial * w
			im.Set(x, y, v)
			if v > peak {
				peak = v
			}
		}
	}
	if peak > 0 {
		inv := 1 / peak
		for i := range im.Pix {
			im.Pix[i] *= inv
		}
	}
	return im
}

// quadrant maps detector-frame displacement to quadrant index:
// 0=NE (+x,−y up), 1=NW, 2=SW, 3=SE. Image y grows downward, so "north"
// is negative dy.
func quadrant(dx, dy float64) int {
	switch {
	case dx >= 0 && dy < 0:
		return 0
	case dx < 0 && dy < 0:
		return 1
	case dx < 0 && dy >= 0:
		return 2
	default:
		return 3
	}
}
