package lcls

import (
	"bytes"
	"math"
	"testing"

	"arams/internal/imgproc"
)

func TestBeamGeneratorDeterministic(t *testing.T) {
	a := NewBeamGenerator(BeamConfig{Seed: 1}).Generate(5)
	b := NewBeamGenerator(BeamConfig{Seed: 1}).Generate(5)
	for i := range a {
		for p := range a[i].Image.Pix {
			if a[i].Image.Pix[p] != b[i].Image.Pix[p] {
				t.Fatalf("frame %d differs between same-seed generators", i)
			}
		}
	}
}

func TestBeamFrameBasics(t *testing.T) {
	bg := NewBeamGenerator(BeamConfig{Size: 48, Seed: 2})
	if bg.Size() != 48 {
		t.Fatalf("Size = %d", bg.Size())
	}
	for i := 0; i < 20; i++ {
		f := bg.Next()
		if f.Image.W != 48 || f.Image.H != 48 {
			t.Fatalf("frame %d wrong size", i)
		}
		if f.Image.Sum() <= 0 {
			t.Fatalf("frame %d has no intensity", i)
		}
		mx := f.Image.Max()
		if mx > 1.2 {
			t.Fatalf("frame %d peak %v far above normalized 1", i, mx)
		}
		for _, v := range f.Image.Pix {
			if v < 0 || math.IsNaN(v) {
				t.Fatalf("frame %d has invalid pixel %v", i, v)
			}
		}
	}
}

func TestBeamCOMTracksParams(t *testing.T) {
	// Noise-free fundamental-mode frames: the image center of mass
	// must match the generative center.
	bg := NewBeamGenerator(BeamConfig{
		Size: 64, Jitter: 5, ModeProb: -1, ExoticFrac: 0, NoiseLevel: -1, Seed: 3,
	})
	for i := 0; i < 10; i++ {
		f := bg.Next()
		st := imgproc.ComputeStats(f.Image)
		if math.Abs(st.OffsetX-f.Params.CenterX) > 0.5 || math.Abs(st.OffsetY-f.Params.CenterY) > 0.5 {
			t.Fatalf("frame %d: measured offset (%v,%v) vs params (%v,%v)",
				i, st.OffsetX, st.OffsetY, f.Params.CenterX, f.Params.CenterY)
		}
	}
}

func TestBeamCircularityTracksParams(t *testing.T) {
	bg := NewBeamGenerator(BeamConfig{
		Size: 64, Jitter: 0.001, ElongSigma: 0.5, ModeProb: -1, NoiseLevel: -1, Seed: 4,
	})
	for i := 0; i < 10; i++ {
		f := bg.Next()
		st := imgproc.ComputeStats(f.Image)
		want := f.Params.Circularity()
		if math.Abs(st.Circularity-want) > 0.1 {
			t.Fatalf("frame %d: measured circularity %v vs params %v", i, st.Circularity, want)
		}
	}
}

func TestHigherModesHaveLobes(t *testing.T) {
	// TEM01 has a nodal line: intensity at the exact center ~0.
	p := BeamParams{WidthX: 8, WidthY: 8, ModeM: 1}
	im := renderBeam(64, p)
	center := im.At(31, 31) // node of H1 along x
	if center > 0.05 {
		t.Fatalf("TEM10 center intensity %v, expected near-zero node", center)
	}
	if im.Max() < 0.99 {
		t.Fatalf("peak not normalized: %v", im.Max())
	}
}

func TestHermitePolynomials(t *testing.T) {
	cases := []struct {
		n    int
		x, y float64
	}{
		{0, 1.5, 1}, {1, 1.5, 3}, {2, 1.5, 7}, {3, 2, 40},
	}
	for _, c := range cases {
		if got := hermite(c.n, c.x); math.Abs(got-c.y) > 1e-12 {
			t.Errorf("H_%d(%v) = %v, want %v", c.n, c.x, got, c.y)
		}
	}
}

func TestExoticFraction(t *testing.T) {
	bg := NewBeamGenerator(BeamConfig{ExoticFrac: 0.2, Seed: 5})
	exotic := 0
	const n = 500
	for i := 0; i < n; i++ {
		if bg.Next().Params.Exotic {
			exotic++
		}
	}
	if exotic < n*10/100 || exotic > n*30/100 {
		t.Fatalf("exotic count %d of %d, want ~20%%", exotic, n)
	}
}

func TestDiffractionClasses(t *testing.T) {
	dg := NewDiffractionGenerator(DiffractionConfig{Size: 64, Seed: 6})
	if dg.NumClasses() != 4 {
		t.Fatalf("default classes = %d", dg.NumClasses())
	}
	frames, labels := dg.Generate(50)
	if len(frames) != 50 || len(labels) != 50 {
		t.Fatal("Generate length mismatch")
	}
	seen := map[int]bool{}
	for i, f := range frames {
		if f.Params.Class != labels[i] {
			t.Fatal("label mismatch")
		}
		seen[labels[i]] = true
		if f.Image.Sum() <= 0 || f.Image.Max() > 1.5 {
			t.Fatalf("frame %d intensity out of range", i)
		}
	}
	if len(seen) != 4 {
		t.Fatalf("only %d classes appeared in 50 draws", len(seen))
	}
}

func TestDiffractionQuadrantWeights(t *testing.T) {
	// A top-heavy class must put most ring intensity in the top half.
	dg := NewDiffractionGenerator(DiffractionConfig{
		Size: 96, Classes: [][4]float64{{1, 1, 0.1, 0.1}}, NoiseLevel: -1, Seed: 7,
	})
	f := dg.NextClass(0)
	var top, bottom float64
	for y := 0; y < 96; y++ {
		for x := 0; x < 96; x++ {
			if y < 48 {
				top += f.Image.At(x, y)
			} else {
				bottom += f.Image.At(x, y)
			}
		}
	}
	if top < 4*bottom {
		t.Fatalf("top %v not dominant over bottom %v", top, bottom)
	}
}

func TestDiffractionRingRadius(t *testing.T) {
	dg := NewDiffractionGenerator(DiffractionConfig{Size: 128, RadiusJit: -1, NoiseLevel: -1, Seed: 8})
	f := dg.NextClass(0)
	// Mean radius of bright pixels should sit near cfg radius (128/3).
	var wr, w float64
	c := 63.5
	for y := 0; y < 128; y++ {
		for x := 0; x < 128; x++ {
			v := f.Image.At(x, y)
			if v > 0.1 {
				r := math.Hypot(float64(x)-c, float64(y)-c)
				wr += v * r
				w += v
			}
		}
	}
	if w == 0 {
		t.Fatal("no ring rendered")
	}
	got := wr / w
	if math.Abs(got-128.0/3) > 2 {
		t.Fatalf("ring radius %v, want ~%v", got, 128.0/3)
	}
}

func TestQuadrantMapping(t *testing.T) {
	cases := []struct {
		dx, dy float64
		want   int
	}{
		{1, -1, 0}, {-1, -1, 1}, {-1, 1, 2}, {1, 1, 3},
	}
	for _, c := range cases {
		if got := quadrant(c.dx, c.dy); got != c.want {
			t.Errorf("quadrant(%v,%v) = %d, want %d", c.dx, c.dy, got, c.want)
		}
	}
}

func TestEventBuilderAssembles(t *testing.T) {
	eb := NewEventBuilder([]string{"a", "b"}, 0)
	im := imgproc.NewImage(2, 2)
	if _, done := eb.Push(Readout{PulseID: 1, Detector: "a", Image: im}); done {
		t.Fatal("incomplete event reported done")
	}
	ev, done := eb.Push(Readout{PulseID: 1, Detector: "b", Image: im})
	if !done || ev.PulseID != 1 || len(ev.Images) != 2 {
		t.Fatalf("event not assembled: %+v done=%v", ev, done)
	}
	if eb.Built() != 1 || eb.Pending() != 0 {
		t.Fatalf("Built=%d Pending=%d", eb.Built(), eb.Pending())
	}
}

func TestEventBuilderWindowExpiry(t *testing.T) {
	eb := NewEventBuilder([]string{"a", "b"}, 5)
	im := imgproc.NewImage(1, 1)
	eb.Push(Readout{PulseID: 1, Detector: "a", Image: im}) // will never complete
	for p := uint64(2); p <= 10; p++ {
		eb.Push(Readout{PulseID: p, Detector: "a", Image: im})
		eb.Push(Readout{PulseID: p, Detector: "b", Image: im})
	}
	if eb.Dropped() == 0 {
		t.Fatal("stale pending event never expired")
	}
	if eb.Built() != 9 {
		t.Fatalf("Built = %d, want 9", eb.Built())
	}
}

func TestEventBuilderIgnoresUnknownDetector(t *testing.T) {
	eb := NewEventBuilder([]string{"a"}, 0)
	im := imgproc.NewImage(1, 1)
	if _, done := eb.Push(Readout{PulseID: 1, Detector: "zzz", Image: im}); done {
		t.Fatal("unknown detector completed an event")
	}
	if eb.Pending() != 0 {
		t.Fatal("unknown detector left pending state")
	}
}

func TestStreamJumbledStillBuilds(t *testing.T) {
	beam := NewBeamGenerator(BeamConfig{Size: 16, Seed: 9})
	diff := NewDiffractionGenerator(DiffractionConfig{Size: 16, Seed: 10})
	readouts, beams, diffs := Stream(StreamConfig{Pulses: 50, Jumble: 8, Seed: 11}, beam, diff)
	if len(beams) != 50 || len(diffs) != 50 {
		t.Fatal("ground truth lengths wrong")
	}
	eb := NewEventBuilder([]string{BeamDetector, AreaDetector}, 100)
	complete := 0
	for _, r := range readouts {
		if _, done := eb.Push(r); done {
			complete++
		}
	}
	if complete != 50 {
		t.Fatalf("built %d events, want 50", complete)
	}
}

func TestStreamWithDrops(t *testing.T) {
	beam := NewBeamGenerator(BeamConfig{Size: 8, Seed: 12})
	diff := NewDiffractionGenerator(DiffractionConfig{Size: 8, Seed: 13})
	readouts, _, _ := Stream(StreamConfig{Pulses: 200, DropProb: 0.1, Seed: 14}, beam, diff)
	if len(readouts) >= 400 || len(readouts) < 300 {
		t.Fatalf("drop rate off: %d readouts of 400", len(readouts))
	}
	eb := NewEventBuilder([]string{BeamDetector, AreaDetector}, 50)
	for _, r := range readouts {
		eb.Push(r)
	}
	if eb.Built() == 0 {
		t.Fatal("no events built despite most readouts surviving")
	}
	if eb.Built() == 200 {
		t.Fatal("all events built despite dropped readouts")
	}
}

func TestRunRoundTrip(t *testing.T) {
	bg := NewBeamGenerator(BeamConfig{Size: 12, Seed: 15})
	run := &Run{Experiment: "xppc00121", RunNumber: 510, Detector: BeamDetector}
	for i := 0; i < 7; i++ {
		run.Append(bg.Next().Image, i%3)
	}
	var buf bytes.Buffer
	if _, err := run.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRun(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Experiment != "xppc00121" || got.RunNumber != 510 || got.Detector != BeamDetector {
		t.Fatalf("header mismatch: %+v", got)
	}
	if got.Len() != 7 || got.Width != 12 || got.Height != 12 {
		t.Fatalf("shape mismatch: %d frames %dx%d", got.Len(), got.Width, got.Height)
	}
	for i := range run.Frames {
		if got.Labels[i] != run.Labels[i] {
			t.Fatalf("label %d mismatch", i)
		}
		for p := range run.Frames[i].Pix {
			if got.Frames[i].Pix[p] != run.Frames[i].Pix[p] {
				t.Fatalf("frame %d pixel %d mismatch", i, p)
			}
		}
	}
}

func TestReadRunRejectsGarbage(t *testing.T) {
	if _, err := ReadRun(bytes.NewReader([]byte("not a run file......"))); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := ReadRun(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input accepted")
	}
}

func TestRunAppendShapeMismatchPanics(t *testing.T) {
	run := &Run{}
	run.Append(imgproc.NewImage(4, 4), 0)
	defer func() {
		if recover() == nil {
			t.Fatal("shape mismatch append did not panic")
		}
	}()
	run.Append(imgproc.NewImage(5, 5), 0)
}
