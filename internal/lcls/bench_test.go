package lcls

import (
	"testing"

	"arams/internal/imgproc"
)

func BenchmarkBeamGenerate(b *testing.B) {
	bg := NewBeamGenerator(BeamConfig{Size: 64, Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = bg.Next()
	}
}

func BenchmarkDiffractionGenerate(b *testing.B) {
	dg := NewDiffractionGenerator(DiffractionConfig{Size: 128, Seed: 2})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = dg.Next()
	}
}

func BenchmarkEventBuilder(b *testing.B) {
	im := imgproc.NewImage(8, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eb := NewEventBuilder([]string{"a", "b"}, 64)
		for p := uint64(1); p <= 100; p++ {
			eb.Push(Readout{PulseID: p, Detector: "a", Image: im})
			eb.Push(Readout{PulseID: p, Detector: "b", Image: im})
		}
	}
}
