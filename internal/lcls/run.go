package lcls

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"arams/internal/imgproc"
)

// Run is a stored acquisition: a sequence of equal-size frames with
// integer labels (class, or −1 when unlabeled), standing in for the
// experiment runs (e.g. xppc00121 run 510) the paper reads through
// psana. Runs serialize to a compact binary format so example programs
// can write and re-read them like offline data.
type Run struct {
	Experiment string
	RunNumber  int
	Detector   string
	Width      int
	Height     int
	Frames     []*imgproc.Image
	Labels     []int
}

// Append adds a frame with its label, validating the shape.
func (r *Run) Append(im *imgproc.Image, label int) {
	if len(r.Frames) == 0 && r.Width == 0 {
		r.Width, r.Height = im.W, im.H
	}
	if im.W != r.Width || im.H != r.Height {
		panic(fmt.Sprintf("lcls: frame %d×%d does not match run %d×%d", im.W, im.H, r.Width, r.Height))
	}
	r.Frames = append(r.Frames, im)
	r.Labels = append(r.Labels, label)
}

// Len returns the number of frames.
func (r *Run) Len() int { return len(r.Frames) }

const runMagic = uint32(0x4c434c53) // "LCLS"

// WriteTo serializes the run. Format: magic, version, header strings,
// dims, frame count, then per frame a label and raw float64 pixels in
// little endian.
func (r *Run) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	write := func(v interface{}) error {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
		n += int64(binary.Size(v))
		return nil
	}
	writeStr := func(s string) error {
		if err := write(uint32(len(s))); err != nil {
			return err
		}
		m, err := bw.WriteString(s)
		n += int64(m)
		return err
	}
	if err := write(runMagic); err != nil {
		return n, err
	}
	if err := write(uint32(1)); err != nil {
		return n, err
	}
	if err := writeStr(r.Experiment); err != nil {
		return n, err
	}
	if err := write(int64(r.RunNumber)); err != nil {
		return n, err
	}
	if err := writeStr(r.Detector); err != nil {
		return n, err
	}
	if err := write(int64(r.Width)); err != nil {
		return n, err
	}
	if err := write(int64(r.Height)); err != nil {
		return n, err
	}
	if err := write(int64(len(r.Frames))); err != nil {
		return n, err
	}
	for i, im := range r.Frames {
		if err := write(int64(r.Labels[i])); err != nil {
			return n, err
		}
		for _, px := range im.Pix {
			if err := write(math.Float64bits(px)); err != nil {
				return n, err
			}
		}
	}
	return n, bw.Flush()
}

// ReadRun deserializes a run written by WriteTo.
func ReadRun(rd io.Reader) (*Run, error) {
	br := bufio.NewReader(rd)
	read := func(v interface{}) error { return binary.Read(br, binary.LittleEndian, v) }
	readStr := func() (string, error) {
		var l uint32
		if err := read(&l); err != nil {
			return "", err
		}
		if l > 1<<20 {
			return "", fmt.Errorf("lcls: implausible string length %d", l)
		}
		buf := make([]byte, l)
		if _, err := io.ReadFull(br, buf); err != nil {
			return "", err
		}
		return string(buf), nil
	}
	var magic, version uint32
	if err := read(&magic); err != nil {
		return nil, err
	}
	if magic != runMagic {
		return nil, fmt.Errorf("lcls: bad magic %#x", magic)
	}
	if err := read(&version); err != nil {
		return nil, err
	}
	if version != 1 {
		return nil, fmt.Errorf("lcls: unsupported run version %d", version)
	}
	r := &Run{}
	var err error
	if r.Experiment, err = readStr(); err != nil {
		return nil, err
	}
	var tmp int64
	if err = read(&tmp); err != nil {
		return nil, err
	}
	r.RunNumber = int(tmp)
	if r.Detector, err = readStr(); err != nil {
		return nil, err
	}
	if err = read(&tmp); err != nil {
		return nil, err
	}
	r.Width = int(tmp)
	if err = read(&tmp); err != nil {
		return nil, err
	}
	r.Height = int(tmp)
	if r.Width < 0 || r.Height < 0 || r.Width*r.Height > 1<<28 {
		return nil, fmt.Errorf("lcls: implausible frame size %d×%d", r.Width, r.Height)
	}
	var count int64
	if err = read(&count); err != nil {
		return nil, err
	}
	if count < 0 || count > 1<<24 {
		return nil, fmt.Errorf("lcls: implausible frame count %d", count)
	}
	for i := int64(0); i < count; i++ {
		var label int64
		if err = read(&label); err != nil {
			return nil, err
		}
		im := imgproc.NewImage(r.Width, r.Height)
		for p := range im.Pix {
			var bits uint64
			if err = read(&bits); err != nil {
				return nil, err
			}
			im.Pix[p] = math.Float64frombits(bits)
		}
		r.Frames = append(r.Frames, im)
		r.Labels = append(r.Labels, int(label))
	}
	return r, nil
}
