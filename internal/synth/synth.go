// Package synth generates the synthetic evaluation datasets of §V of
// the paper: n×d random matrices with prescribed singular-value decay,
// assembled as U·diag(σ)·Vᵀ from Haar-random orthogonal factors. For
// multi-core experiments, each worker perturbs shared base factors so
// the shards are "similar but not identical", mimicking shot-to-shot
// beam-profile variation.
package synth

import (
	"fmt"
	"math"

	"arams/internal/mat"
	"arams/internal/rng"
)

// Decay identifies a singular-value decay profile.
type Decay int

const (
	// SubExponential decays as exp(-sqrt(i)) — the slowest profile
	// (red curve in Fig. 1).
	SubExponential Decay = iota
	// Exponential decays as exp(-i/τ) (blue curve in Fig. 1).
	Exponential
	// SuperExponential decays as exp(-(i/τ)^1.5) — the fastest profile
	// (black curve in Fig. 1).
	SuperExponential
	// Cubic decays as 1/(1+i)³, the profile of the strong-scaling
	// matrix in §V.3.
	Cubic
)

// String returns the profile name used in tables and legends.
func (d Decay) String() string {
	switch d {
	case SubExponential:
		return "sub-exponential"
	case Exponential:
		return "exponential"
	case SuperExponential:
		return "super-exponential"
	case Cubic:
		return "cubic"
	default:
		return fmt.Sprintf("Decay(%d)", int(d))
	}
}

// SingularValues returns r singular values following the decay profile,
// scaled so σ₀ = scale.
func SingularValues(d Decay, r int, scale float64) []float64 {
	s := make([]float64, r)
	// τ chosen so the spectrum spans several orders of magnitude over r
	// indices, matching the semilog curves of Fig. 1.
	tau := float64(r) / 8
	for i := 0; i < r; i++ {
		x := float64(i)
		switch d {
		case SubExponential:
			s[i] = math.Exp(-math.Sqrt(x) / math.Sqrt(tau))
		case Exponential:
			s[i] = math.Exp(-x / tau)
		case SuperExponential:
			s[i] = math.Exp(-math.Pow(x/tau, 1.5))
		case Cubic:
			s[i] = 1 / math.Pow(1+x, 3)
		default:
			panic("synth: unknown decay profile")
		}
	}
	for i := range s {
		s[i] *= scale
	}
	return s
}

// Params configures dataset generation.
type Params struct {
	N     int     // samples (rows)
	D     int     // features (columns)
	Rank  int     // intrinsic rank r (number of nonzero singular values)
	Decay Decay   // singular-value profile
	Scale float64 // σ₀; defaults to 1 if zero
	Seed  uint64  // RNG seed
}

// Dataset is a generated matrix together with its ground-truth factors,
// so tests and experiments can compute exact optimal low-rank errors.
type Dataset struct {
	A      *mat.Matrix // n×d data
	U      *mat.Matrix // n×r left factor (orthonormal columns)
	V      *mat.Matrix // d×r right factor (orthonormal columns)
	Sigmas []float64   // r singular values, descending
}

// Generate builds a dataset A = U diag(σ) Vᵀ with Haar-random factors.
func Generate(p Params) *Dataset {
	if p.Scale == 0 {
		p.Scale = 1
	}
	if p.Rank <= 0 || p.Rank > p.N || p.Rank > p.D {
		panic(fmt.Sprintf("synth: rank %d invalid for %d×%d", p.Rank, p.N, p.D))
	}
	g := rng.New(p.Seed)
	u := mat.RandOrthonormalCols(p.N, p.Rank, g)
	v := mat.RandOrthonormalCols(p.D, p.Rank, g)
	sig := SingularValues(p.Decay, p.Rank, p.Scale)
	return &Dataset{A: assemble(u, sig, v), U: u, V: v, Sigmas: sig}
}

// assemble computes U diag(σ) Vᵀ without forming diag(σ) explicitly.
func assemble(u *mat.Matrix, sig []float64, v *mat.Matrix) *mat.Matrix {
	us := u.Clone()
	for j, s := range sig {
		for i := 0; i < us.RowsN; i++ {
			us.Set(i, j, us.At(i, j)*s)
		}
	}
	return mat.MulABt(us, v)
}

// OptimalErrorSq returns ‖A − A_k‖_F² for the best rank-k approximation,
// computable exactly from the ground-truth spectrum.
func (d *Dataset) OptimalErrorSq(k int) float64 {
	var s float64
	for i := k; i < len(d.Sigmas); i++ {
		s += d.Sigmas[i] * d.Sigmas[i]
	}
	return s
}

// GenerateSharded builds `shards` datasets sharing base factors, each
// perturbed by an independent rotation of magnitude eps, reproducing the
// paper's per-core data generation: "each core starts with the same
// random orthogonal matrices and we then perturb these ... by a unique
// perturbation for each core". Shard i has nPerShard rows.
func GenerateSharded(p Params, shards int, nPerShard int, eps float64) []*Dataset {
	if p.Scale == 0 {
		p.Scale = 1
	}
	g := rng.New(p.Seed)
	baseV := mat.RandOrthonormalCols(p.D, p.Rank, g)
	sig := SingularValues(p.Decay, p.Rank, p.Scale)
	// A shard with fewer rows than the global rank can only span an
	// nPerShard-dimensional subspace; it carries the leading
	// directions, which is exactly what small per-core batches of
	// highly similar frames look like.
	rank := p.Rank
	if rank > nPerShard {
		rank = nPerShard
	}
	out := make([]*Dataset, shards)
	for s := 0; s < shards; s++ {
		gs := g.Split()
		u := mat.RandOrthonormalCols(nPerShard, rank, gs)
		v := perturbOrthonormal(baseV, eps, gs)
		vr := v
		sr := sig
		if rank < p.Rank {
			vr = mat.New(p.D, rank)
			for i := 0; i < p.D; i++ {
				copy(vr.Row(i), v.Row(i)[:rank])
			}
			sr = sig[:rank]
		}
		out[s] = &Dataset{A: assemble(u, sr, vr), U: u, V: vr, Sigmas: sr}
	}
	return out
}

// perturbOrthonormal adds Gaussian noise of relative Frobenius magnitude
// eps to q and re-orthonormalizes with QR, yielding a nearby point on
// the Stiefel manifold. The noise is scaled by 1/√rows so that eps is a
// dimension-independent relative perturbation size.
func perturbOrthonormal(q *mat.Matrix, eps float64, g *rng.RNG) *mat.Matrix {
	p := q.Clone()
	scale := eps / math.Sqrt(float64(q.RowsN))
	for i := range p.Data {
		p.Data[i] += scale * g.Norm()
	}
	qq, rr := mat.QR(p)
	for j := 0; j < qq.ColsN; j++ {
		if rr.At(j, j) < 0 {
			for i := 0; i < qq.RowsN; i++ {
				qq.Set(i, j, -qq.At(i, j))
			}
		}
	}
	return qq
}

// Concat stacks shard matrices vertically into one dataset view.
func Concat(shards []*Dataset) *mat.Matrix {
	if len(shards) == 0 {
		return mat.New(0, 0)
	}
	d := shards[0].A.ColsN
	total := 0
	for _, s := range shards {
		if s.A.ColsN != d {
			panic("synth: Concat shards have different widths")
		}
		total += s.A.RowsN
	}
	out := mat.New(total, d)
	row := 0
	for _, s := range shards {
		for i := 0; i < s.A.RowsN; i++ {
			copy(out.Row(row), s.A.Row(i))
			row++
		}
	}
	return out
}
