package synth

import (
	"math"
	"testing"

	"arams/internal/mat"
)

func TestSingularValuesDescending(t *testing.T) {
	for _, d := range []Decay{SubExponential, Exponential, SuperExponential, Cubic} {
		s := SingularValues(d, 100, 2)
		if math.Abs(s[0]-2) > 1e-12 {
			t.Errorf("%v: σ₀ = %v, want 2", d, s[0])
		}
		for i := 1; i < len(s); i++ {
			if s[i] > s[i-1] {
				t.Fatalf("%v: not descending at %d", d, i)
			}
			if s[i] <= 0 {
				t.Fatalf("%v: non-positive σ at %d", d, i)
			}
		}
	}
}

func TestDecayOrdering(t *testing.T) {
	// At the tail, super-exponential < exponential < sub-exponential.
	r := 100
	sub := SingularValues(SubExponential, r, 1)
	exp := SingularValues(Exponential, r, 1)
	sup := SingularValues(SuperExponential, r, 1)
	i := r - 1
	if !(sup[i] < exp[i] && exp[i] < sub[i]) {
		t.Fatalf("tail ordering wrong: sup=%g exp=%g sub=%g", sup[i], exp[i], sub[i])
	}
}

func TestDecayString(t *testing.T) {
	if SubExponential.String() != "sub-exponential" || Cubic.String() != "cubic" {
		t.Fatal("Decay names wrong")
	}
	if Decay(99).String() == "" {
		t.Fatal("unknown decay has empty name")
	}
}

func TestGenerateSpectrum(t *testing.T) {
	p := Params{N: 60, D: 40, Rank: 10, Decay: Exponential, Seed: 1}
	ds := Generate(p)
	if r, c := ds.A.Dims(); r != 60 || c != 40 {
		t.Fatalf("shape %d×%d", r, c)
	}
	// The generated matrix must have exactly the prescribed singular
	// values (up to roundoff) and rank.
	_, s, _ := mat.SVD(ds.A)
	for i := 0; i < 10; i++ {
		if math.Abs(s[i]-ds.Sigmas[i]) > 1e-9 {
			t.Fatalf("σ[%d] = %v, want %v", i, s[i], ds.Sigmas[i])
		}
	}
	for i := 10; i < len(s); i++ {
		if s[i] > 1e-9 {
			t.Fatalf("rank leak: σ[%d] = %v", i, s[i])
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	p := Params{N: 20, D: 15, Rank: 5, Decay: Cubic, Seed: 7}
	a := Generate(p)
	b := Generate(p)
	if !a.A.Equal(b.A, 0) {
		t.Fatal("same seed gave different data")
	}
	p.Seed = 8
	c := Generate(p)
	if a.A.Equal(c.A, 1e-9) {
		t.Fatal("different seeds gave identical data")
	}
}

func TestOptimalErrorSq(t *testing.T) {
	p := Params{N: 30, D: 30, Rank: 4, Decay: Exponential, Seed: 2}
	ds := Generate(p)
	want := ds.Sigmas[2]*ds.Sigmas[2] + ds.Sigmas[3]*ds.Sigmas[3]
	if got := ds.OptimalErrorSq(2); math.Abs(got-want) > 1e-12 {
		t.Fatalf("OptimalErrorSq(2) = %v, want %v", got, want)
	}
	if got := ds.OptimalErrorSq(4); got != 0 {
		t.Fatalf("OptimalErrorSq(rank) = %v, want 0", got)
	}
	if got := ds.OptimalErrorSq(99); got != 0 {
		t.Fatalf("OptimalErrorSq beyond rank = %v, want 0", got)
	}
}

func TestGenerateShardedSimilarity(t *testing.T) {
	p := Params{N: 0, D: 50, Rank: 8, Decay: Exponential, Seed: 3}
	shards := GenerateSharded(p, 4, 25, 0.05)
	if len(shards) != 4 {
		t.Fatalf("got %d shards", len(shards))
	}
	for i, s := range shards {
		if r, c := s.A.Dims(); r != 25 || c != 50 {
			t.Fatalf("shard %d shape %d×%d", i, r, c)
		}
		// Each shard's V stays orthonormal after perturbation.
		vtv := mat.Mul(s.V.T(), s.V)
		if !vtv.Equal(mat.Eye(8), 1e-9) {
			t.Fatalf("shard %d V not orthonormal", i)
		}
	}
	// Shards share structure: their V factors are close to each other
	// (small eps) but not identical.
	d01 := matDiffNorm(shards[0].V, shards[1].V)
	if d01 == 0 {
		t.Fatal("shards have identical V — perturbation missing")
	}
	if d01 > 1.0 {
		t.Fatalf("shards too dissimilar: ‖V0−V1‖ = %v", d01)
	}
}

func TestConcat(t *testing.T) {
	p := Params{D: 10, Rank: 3, Decay: Cubic, Seed: 4}
	shards := GenerateSharded(p, 3, 5, 0.01)
	all := Concat(shards)
	if r, c := all.Dims(); r != 15 || c != 10 {
		t.Fatalf("Concat shape %d×%d", r, c)
	}
	// First row of shard 1 lands at row 5.
	for j := 0; j < 10; j++ {
		if all.At(5, j) != shards[1].A.At(0, j) {
			t.Fatal("Concat row placement wrong")
		}
	}
	if e := Concat(nil); e.RowsN != 0 {
		t.Fatal("Concat(nil) not empty")
	}
}

func TestGenerateInvalidRankPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid rank did not panic")
		}
	}()
	Generate(Params{N: 5, D: 5, Rank: 10, Decay: Exponential})
}

func matDiffNorm(a, b *mat.Matrix) float64 {
	d := a.Clone()
	d.Sub(b)
	return d.FrobeniusNorm()
}
