// Package arams_test hosts the top-level benchmark harness: one
// testing.B benchmark per table/figure of the paper, sized so the full
// suite runs in minutes. The aramsbench command produces the actual
// tables; these benchmarks track the performance of each experiment's
// computational kernel.
package arams_test

import (
	"fmt"
	"math"
	"testing"

	"arams/internal/bench"
	"arams/internal/hdbscan"
	"arams/internal/imgproc"
	"arams/internal/lcls"
	"arams/internal/mat"
	"arams/internal/optics"
	"arams/internal/parallel"
	"arams/internal/pipeline"
	"arams/internal/rng"
	"arams/internal/sketch"
	"arams/internal/synth"
	"arams/internal/umap"
)

// BenchmarkFig1Variants times the four algorithm variants of Fig. 1 on
// a fixed synthetic stream (E2).
func BenchmarkFig1Variants(b *testing.B) {
	ds := synth.Generate(synth.Params{
		N: 1000, D: 200, Rank: 100, Decay: synth.Exponential, Seed: 1,
	})
	for _, tc := range []struct {
		name string
		cfg  sketch.Config
	}{
		{"FD", sketch.Config{Ell0: 30, Beta: 1, Seed: 2}},
		{"RA-FD", sketch.Config{Ell0: 10, Nu: 10, Eps: 0.05, RankAdaptive: true, Beta: 1, Seed: 2}},
		{"PS+FD", sketch.Config{Ell0: 30, Beta: 0.8, Seed: 2}},
		{"PS+RA-FD", sketch.Config{Ell0: 10, Nu: 10, Eps: 0.05, RankAdaptive: true, Beta: 0.8, Seed: 2}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				a := sketch.NewARAMS(tc.cfg, ds.A.ColsN, ds.A.RowsN)
				a.ProcessBatch(ds.A)
				_ = a.Sketch()
			}
		})
	}
}

// BenchmarkFig1SingularValues times dataset generation (E1).
func BenchmarkFig1SingularValues(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = synth.Generate(synth.Params{
			N: 500, D: 200, Rank: 100, Decay: synth.SubExponential, Seed: uint64(i),
		})
	}
}

// BenchmarkFig2Scaling times parallel sketching with both merge
// strategies at several worker counts (E3).
func BenchmarkFig2Scaling(b *testing.B) {
	ds := synth.Generate(synth.Params{
		N: 512, D: 1024, Rank: 32, Decay: synth.Cubic, Seed: 3,
	})
	for _, strat := range []parallel.MergeStrategy{parallel.TreeMerge, parallel.SerialMerge} {
		for _, cores := range []int{2, 8, 32} {
			b.Run(fmt.Sprintf("%s-%dw", strat, cores), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					shards := parallel.SplitRows(ds.A, cores)
					parallel.Run(shards, parallel.FDSketcher(24, sketch.Options{}), strat)
				}
			})
		}
	}
}

// BenchmarkFig3Error times the error evaluation used in Fig. 3 (E4).
func BenchmarkFig3Error(b *testing.B) {
	ds := synth.Generate(synth.Params{
		N: 256, D: 512, Rank: 32, Decay: synth.Cubic, Seed: 4,
	})
	shards := parallel.SplitRows(ds.A, 8)
	global, _ := parallel.Run(shards, parallel.FDSketcher(24, sketch.Options{}), parallel.TreeMerge)
	basis := global.Basis(global.Ell())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = sketch.RelProjErr(ds.A, basis)
	}
}

// BenchmarkFig5Pipeline times the beam-profile pipeline end to end (E5).
func BenchmarkFig5Pipeline(b *testing.B) {
	bg := lcls.NewBeamGenerator(lcls.BeamConfig{Size: 32, Seed: 5})
	frames := bg.Generate(150)
	imgs := make([]*imgproc.Image, len(frames))
	for i, f := range frames {
		imgs[i] = f.Image
	}
	cfg := pipeline.Config{
		Pre:    imgproc.Preprocessor{Normalize: true},
		Sketch: sketch.Config{Ell0: 15, Seed: 6},
		UMAP:   umap.Config{NNeighbors: 10, NEpochs: 60, Seed: 7},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = pipeline.Process(imgs, cfg)
	}
}

// BenchmarkFig6Pipeline times the diffraction pipeline end to end (E6).
func BenchmarkFig6Pipeline(b *testing.B) {
	dg := lcls.NewDiffractionGenerator(lcls.DiffractionConfig{Size: 32, Seed: 8})
	frames, _ := dg.Generate(150)
	imgs := make([]*imgproc.Image, len(frames))
	for i, f := range frames {
		imgs[i] = f.Image
	}
	cfg := pipeline.Config{
		Pre:    imgproc.Preprocessor{Normalize: true},
		Sketch: sketch.Config{Ell0: 15, Seed: 9},
		UMAP:   umap.Config{NNeighbors: 12, NEpochs: 60, Seed: 10},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = pipeline.Process(imgs, cfg)
	}
}

// BenchmarkRuntimeThroughput times the §VI-B streaming path: event
// building plus online monitor ingest (E7).
func BenchmarkRuntimeThroughput(b *testing.B) {
	beam := lcls.NewBeamGenerator(lcls.BeamConfig{Size: 32, Seed: 11})
	diff := lcls.NewDiffractionGenerator(lcls.DiffractionConfig{Size: 32, Seed: 12})
	readouts, _, _ := lcls.Stream(lcls.StreamConfig{Pulses: 200, Jumble: 8, Seed: 13}, beam, diff)
	cfg := pipeline.Config{
		Pre:    imgproc.Preprocessor{Normalize: true},
		Sketch: sketch.Config{Ell0: 10, Seed: 14},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		builder := lcls.NewEventBuilder([]string{lcls.BeamDetector, lcls.AreaDetector}, 64)
		monitor := pipeline.NewMonitor(cfg, 128)
		for _, r := range readouts {
			if ev, ok := builder.Push(r); ok {
				monitor.Ingest(ev.Images[lcls.BeamDetector], int(ev.PulseID))
			}
		}
	}
	b.ReportMetric(float64(200*b.N)/b.Elapsed().Seconds(), "frames/s")
}

// BenchmarkErrEstimator sweeps the probe count of Algorithm 1 (E8).
func BenchmarkErrEstimator(b *testing.B) {
	g := rng.New(15)
	x := mat.RandGaussian(200, 100, g)
	_, _, vt := mat.SVD(x)
	basis := mat.New(10, 100)
	for i := 0; i < 10; i++ {
		copy(basis.Row(i), vt.Row(i))
	}
	for _, nu := range []int{1, 10, 40} {
		b.Run(fmt.Sprintf("nu=%d", nu), func(b *testing.B) {
			gg := rng.New(16)
			for i := 0; i < b.N; i++ {
				_ = sketch.EstimateResidualSq(x, basis, nu, gg)
			}
		})
	}
}

// BenchmarkSVDBackends compares the Gram-trick rotation against the
// one-sided Jacobi SVD on FD-shaped buffers (ablation A1).
func BenchmarkSVDBackends(b *testing.B) {
	g := rng.New(17)
	for _, shape := range []struct{ m, d int }{{32, 512}, {64, 4096}} {
		buf := mat.RandGaussian(shape.m, shape.d, g)
		b.Run(fmt.Sprintf("gram-%dx%d", shape.m, shape.d), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, _, _ = mat.SVDGram(buf)
			}
		})
		b.Run(fmt.Sprintf("jacobi-%dx%d", shape.m, shape.d), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, _, _ = mat.SVD(buf)
			}
		})
	}
}

// BenchmarkBetaSweep times priority sampling at several keep fractions
// (ablation A2).
func BenchmarkBetaSweep(b *testing.B) {
	g := rng.New(18)
	x := mat.RandGaussian(2000, 100, g)
	for _, beta := range []float64{0.5, 0.8, 1.0} {
		b.Run(fmt.Sprintf("beta=%.1f", beta), func(b *testing.B) {
			gg := rng.New(19)
			for i := 0; i < b.N; i++ {
				_ = sketch.SampleRows(x, beta, gg)
			}
		})
	}
}

// BenchmarkMerge times the pairwise mergeable-summary operation
// (ablation A3).
func BenchmarkMerge(b *testing.B) {
	g := rng.New(20)
	x1 := mat.RandGaussian(200, 512, g)
	x2 := mat.RandGaussian(200, 512, g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		fd1 := sketch.NewFrequentDirections(24, 512, sketch.Options{})
		fd2 := sketch.NewFrequentDirections(24, 512, sketch.Options{})
		fd1.AppendMatrix(x1)
		fd2.AppendMatrix(x2)
		b.StartTimer()
		fd1.Merge(fd2)
	}
}

// BenchmarkUMAPStage and BenchmarkOPTICSStage time the visualization
// stages at pipeline scale.
func BenchmarkUMAPStage(b *testing.B) {
	g := rng.New(21)
	x := mat.RandGaussian(300, 12, g)
	cfg := umap.Config{NNeighbors: 15, NEpochs: 100, Seed: 22}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = umap.Fit(x, cfg)
	}
}

func BenchmarkOPTICSStage(b *testing.B) {
	g := rng.New(23)
	x := mat.RandGaussian(500, 2, g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := optics.Run(x, 5, math.Inf(1))
		_ = res.ExtractXi(0.15, 5, 20)
	}
}

// BenchmarkBaselineSketchers compares FD against the baseline sketchers
// of [5] on the same stream (ablation A6).
func BenchmarkBaselineSketchers(b *testing.B) {
	g := rng.New(24)
	x := mat.RandGaussian(1000, 200, g)
	const ell = 24
	for _, mk := range []func() sketch.Summarizer{
		func() sketch.Summarizer { return sketch.NewFrequentDirections(ell, 200, sketch.Options{}) },
		func() sketch.Summarizer { return sketch.NewRandomProjection(ell, 200, rng.New(25)) },
		func() sketch.Summarizer { return sketch.NewCountSketch(ell, 200, rng.New(26)) },
		func() sketch.Summarizer { return sketch.NewNormSampler(ell, 200, rng.New(27)) },
	} {
		name := mk().Name()
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s := mk()
				for r := 0; r < x.RowsN; r++ {
					s.Append(x.Row(r))
				}
				_ = s.Sketch()
			}
		})
	}
}

// BenchmarkHDBSCANStage times the alternative clustering backend at
// pipeline scale.
func BenchmarkHDBSCANStage(b *testing.B) {
	g := rng.New(28)
	x := mat.RandGaussian(400, 2, g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = hdbscan.Cluster(x, 5, 20)
	}
}

// TestBenchHarnessTables sanity-checks that each experiment table
// builder used by the CLI produces non-empty output (guards the CLI
// against silent regressions).
func TestBenchHarnessTables(t *testing.T) {
	p := bench.Fig1Params{
		N: 200, D: 60, Rank: 30,
		EllSweep: []int{5, 10}, EpsSweep: []float64{0.2, 0.05},
		Nu: 5, Beta: 0.8, Seed: 1,
	}
	if tb := bench.Fig1SingularValues(p); len(tb.Rows) == 0 {
		t.Fatal("fig1sv empty")
	}
	if ts := bench.Fig1ErrorRuntime(p); len(ts) != 3 {
		t.Fatal("fig1 tables wrong")
	}
	sp := bench.ScalingParams{N: 64, D: 128, Rank: 8, Ell: 6, Cores: []int{1, 2}, Seed: 2}
	if tb := bench.Fig2Scaling(sp); len(tb.Rows) != 4 {
		t.Fatal("fig2 rows wrong")
	}
	if tb := bench.Fig3Error(sp); len(tb.Rows) != 2 {
		t.Fatal("fig3 rows wrong")
	}
}
