// Command ckptinfo inspects ARAMS checkpoint files: it prints the
// frame header (version, kind, payload size, checksum verdict) and a
// per-kind summary of the decoded state — the operator's first stop
// when deciding whether a checkpoint is safe to restore from. The
// summary includes the sketch's error-bound certificate (accumulated
// shrinkage mass and the relative covariance bound), so "how accurate
// was the sketch at this checkpoint" is answerable offline.
//
// Usage:
//
//	ckptinfo ckpt/lclsmon.ckpt [more.ckpt ...]
//	ckptinfo -json ckpt/lclsmon.ckpt   # machine-readable, one JSON object per file
//	ckptinfo -dir tenants/             # one-line-per-tenant table of hibernated checkpoints
//
// With -dir the arguments are directories holding a multi-tenant
// registry's hibernation files (tenant-<id>.ckpt): every tenant is
// summarized on one table row — frame count, window occupancy, shard
// count, and the aggregate error-bound certificate composed across its
// shards — so "who is asleep here and how accurate were they" is one
// command. -json combines with -dir for a JSON array.
//
// Exit status is non-zero if any file fails to decode, so the tool can
// gate a restore in a restart script.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"text/tabwriter"

	"arams/internal/ckpt"
	"arams/internal/pipeline"
	"arams/internal/sketch"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit one JSON object per file instead of text")
	dirMode := flag.Bool("dir", false, "treat arguments as hibernation directories; summarize tenant-*.ckpt files as a table")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: %s [-json] <checkpoint-file> [...]\n", os.Args[0])
		fmt.Fprintf(os.Stderr, "       %s [-json] -dir <hibernation-dir> [...]\n", os.Args[0])
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}
	bad := 0
	if *dirMode {
		for _, dir := range flag.Args() {
			if err := describeDir(dir, *jsonOut); err != nil {
				fmt.Fprintf(os.Stderr, "%s: %v\n", dir, err)
				bad++
			}
		}
		if bad > 0 {
			os.Exit(1)
		}
		return
	}
	for _, path := range flag.Args() {
		var err error
		if *jsonOut {
			err = describeJSON(path)
		} else {
			err = describe(path)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", path, err)
			bad++
		}
	}
	if bad > 0 {
		os.Exit(1)
	}
}

// describe prints one file's header and state summary. Header problems
// (bad magic, checksum mismatch, truncation) are reported with as much
// of the header as could be read before the error is returned.
func describe(path string) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	fmt.Printf("%s: %d bytes\n", path, len(b))
	h, err := ckpt.Peek(b)
	if err != nil {
		return err
	}
	fmt.Printf("  frame:    version %d, kind %s, payload %d bytes, checksum ok\n",
		h.Version, h.Kind, h.PayloadLen)
	state, err := ckpt.Unmarshal(b)
	if err != nil {
		return err
	}
	describeState(state, "  ")
	return nil
}

func describeState(state any, indent string) {
	switch s := state.(type) {
	case *sketch.FDState:
		describeFD(s, indent)
	case *sketch.RankAdaptiveState:
		describeRankAdaptive(s, indent)
	case *sketch.PriorityState:
		fmt.Printf("%ssampler:  m=%d, seen %d rows, %d entries held\n",
			indent, s.M, s.Seen, len(s.Entries))
	case *sketch.ARAMSState:
		describeARAMS(s, indent)
	case *pipeline.MonitorState:
		fmt.Printf("%smonitor:  %d frames ingested, window %d holding %d frames\n",
			indent, s.Ingests, s.Window, len(s.Frames))
		populated := 0
		for _, ss := range s.Shards {
			if ss != nil {
				populated++
			}
		}
		if populated == 0 {
			fmt.Printf("%ssketch:   none (nothing ingested yet)\n", indent)
		} else {
			if len(s.Shards) > 1 {
				fmt.Printf("%sshards:   %d slots, %d with sketch state\n",
					indent, len(s.Shards), populated)
			}
			for i, ss := range s.Shards {
				if ss == nil {
					continue
				}
				in := indent
				if len(s.Shards) > 1 {
					fmt.Printf("%sshard %d:\n", indent, i)
					in = indent + "  "
				}
				describeARAMS(ss, in)
			}
		}
		if s.Audit != nil {
			fmt.Printf("%saudit:    %d batches audited, %d alarms, detectors %s/%s\n",
				indent, s.Audit.Batches, s.Audit.Alarms,
				s.Audit.Residual.Kind, s.Audit.Accept.Kind)
		}
		if s.Journal != nil {
			fmt.Printf("%sjournal:  seq %d, %d events retained\n",
				indent, s.Journal.Seq, len(s.Journal.Events))
		}
	default:
		fmt.Printf("%sstate:    %T (no summary available)\n", indent, s)
	}
}

func describeFD(s *sketch.FDState, indent string) {
	fmt.Printf("%ssketch:   frequent-directions ℓ=%d d=%d, %d/%d buffer rows, %d rotations, %d rows seen\n",
		indent, s.Ell, s.D, s.NextZero, 2*s.Ell, s.Rotations, s.Seen)
	fmt.Printf("%serror:    accumulated shrinkage Δ=%.6g (covariance bound ‖AᵀA−BᵀB‖₂ ≤ Δ)\n",
		indent, s.TotalDelta)
	if s.FrobMass > 0 {
		fmt.Printf("%s          stream energy ‖A‖_F²=%.6g, relative bound %.6g, a-priori %.6g\n",
			indent, s.FrobMass, s.TotalDelta/s.FrobMass, s.FrobMass/float64(s.Ell))
	}
}

func describeRankAdaptive(s *sketch.RankAdaptiveState, indent string) {
	describeFD(&s.FD, indent)
	fmt.Printf("%sadaptive: ν=%d ε=%g estimator=%d, %d rank grows, %d recent rows ringed\n",
		indent, s.Nu, s.Eps, int(s.Estimator), s.Grows, len(s.Recent))
}

func describeARAMS(s *sketch.ARAMSState, indent string) {
	fmt.Printf("%sarams:    d=%d, β=%g (sampling %v)\n",
		indent, s.D, s.Cfg.Beta, s.Cfg.Beta < 1)
	switch {
	case s.RankAdaptive != nil:
		describeRankAdaptive(s.RankAdaptive, indent)
	case s.FD != nil:
		describeFD(s.FD, indent)
	}
}

// --- JSON output ---

// jsonCert is the certificate block of the JSON exposition, derived
// from an FDState exactly like audit.Certificate derives it from a
// live sketch.
type jsonCert struct {
	Ell          int     `json:"ell"`
	Dim          int     `json:"dim"`
	RowsSeen     int     `json:"rows_seen"`
	Rotations    int     `json:"rotations"`
	ShrinkMass   float64 `json:"shrink_mass"`
	FrobMass     float64 `json:"frob_mass"`
	CovBound     float64 `json:"cov_bound"`
	RelBound     float64 `json:"rel_bound"`
	AprioriBound float64 `json:"apriori_bound"`
}

type jsonInfo struct {
	Path       string `json:"path"`
	Bytes      int    `json:"bytes"`
	Version    uint32 `json:"version"`
	Kind       string `json:"kind"`
	PayloadLen uint64 `json:"payload_len"`
	ChecksumOK bool   `json:"checksum_ok"`

	Certificate *jsonCert `json:"certificate,omitempty"`
	RankGrows   *int      `json:"rank_grows,omitempty"`
	Beta        *float64  `json:"beta,omitempty"`

	MonitorIngests *int   `json:"monitor_ingests,omitempty"`
	MonitorWindow  *int   `json:"monitor_window,omitempty"`
	MonitorFrames  *int   `json:"monitor_frames,omitempty"`
	MonitorShards  *int   `json:"monitor_shards,omitempty"`
	AuditBatches   *int64 `json:"audit_batches,omitempty"`
	AuditAlarms    *int64 `json:"audit_alarms,omitempty"`
	JournalSeq     *int64 `json:"journal_seq,omitempty"`
	JournalEvents  *int   `json:"journal_events,omitempty"`

	SamplerEntries *int `json:"sampler_entries,omitempty"`
}

func certOf(s *sketch.FDState) *jsonCert {
	c := &jsonCert{
		Ell: s.Ell, Dim: s.D, RowsSeen: s.Seen, Rotations: s.Rotations,
		ShrinkMass: s.TotalDelta, FrobMass: s.FrobMass, CovBound: s.TotalDelta,
	}
	if s.FrobMass > 0 {
		c.RelBound = s.TotalDelta / s.FrobMass
		if s.Ell > 0 {
			c.AprioriBound = s.FrobMass / float64(s.Ell)
		}
	}
	return c
}

// describeJSON emits one machine-readable JSON object for the file on
// stdout.
func describeJSON(path string) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	h, err := ckpt.Peek(b)
	if err != nil {
		return err
	}
	info := jsonInfo{
		Path: path, Bytes: len(b),
		Version: h.Version, Kind: h.Kind.String(),
		PayloadLen: h.PayloadLen, ChecksumOK: h.ChecksumOK,
	}
	state, err := ckpt.Unmarshal(b)
	if err != nil {
		return err
	}
	fillJSON(&info, state)
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(info)
}

func fillJSON(info *jsonInfo, state any) {
	intp := func(v int) *int { return &v }
	switch s := state.(type) {
	case *sketch.FDState:
		info.Certificate = certOf(s)
	case *sketch.RankAdaptiveState:
		info.Certificate = certOf(&s.FD)
		info.RankGrows = intp(s.Grows)
	case *sketch.PriorityState:
		info.SamplerEntries = intp(len(s.Entries))
	case *sketch.ARAMSState:
		fillARAMS(info, s)
	case *pipeline.MonitorState:
		info.MonitorIngests = intp(s.Ingests)
		info.MonitorWindow = intp(s.Window)
		info.MonitorFrames = intp(len(s.Frames))
		if len(s.Shards) > 1 {
			info.MonitorShards = intp(len(s.Shards))
		}
		// With one shard the certificate block is that sketch's. With
		// several, certificates compose additively across the merge:
		// shrinkage/energy/row/rotation ledgers sum, the rank is the max
		// — the same aggregate a reconcile would certify (the merge's own
		// shrinkage is not incurred until it runs, so this is the floor
		// of the restored bound).
		first := true
		for _, ss := range s.Shards {
			if ss == nil {
				continue
			}
			if first {
				fillARAMS(info, ss)
				first = false
				continue
			}
			info.RankGrows = nil // per-shard grow counts do not aggregate
			if fd := aramsFD(ss); fd != nil && info.Certificate != nil {
				c := info.Certificate
				c.RowsSeen += fd.Seen
				c.Rotations += fd.Rotations
				c.ShrinkMass += fd.TotalDelta
				c.FrobMass += fd.FrobMass
				c.CovBound += fd.TotalDelta
				if fd.Ell > c.Ell {
					c.Ell = fd.Ell
				}
				if c.FrobMass > 0 {
					c.RelBound = c.ShrinkMass / c.FrobMass
					if c.Ell > 0 {
						c.AprioriBound = c.FrobMass / float64(c.Ell)
					}
				}
			}
		}
		if s.Audit != nil {
			info.AuditBatches = &s.Audit.Batches
			info.AuditAlarms = &s.Audit.Alarms
		}
		if s.Journal != nil {
			info.JournalSeq = &s.Journal.Seq
			n := len(s.Journal.Events)
			info.JournalEvents = &n
		}
	}
}

// --- directory (multi-tenant hibernation) mode ---

// tenantRow is one hibernated tenant in the -dir summary.
type tenantRow struct {
	Tenant  string `json:"tenant"`
	Path    string `json:"path"`
	Bytes   int    `json:"bytes"`
	Ingests int    `json:"ingests"`
	Window  int    `json:"window_frames"`
	Shards  int    `json:"shards"`

	Certificate *jsonCert `json:"certificate,omitempty"`
	Err         string    `json:"error,omitempty"`
}

// describeDir summarizes every tenant-<id>.ckpt in dir, one row per
// tenant, sorted by tenant ID. Undecodable files get an error row and
// a non-zero exit, but never hide the healthy tenants.
func describeDir(dir string, jsonOut bool) error {
	names, err := filepath.Glob(filepath.Join(dir, "tenant-*.ckpt"))
	if err != nil {
		return err
	}
	sort.Strings(names)
	rows := make([]tenantRow, 0, len(names))
	bad := 0
	for _, path := range names {
		id := strings.TrimSuffix(strings.TrimPrefix(filepath.Base(path), "tenant-"), ".ckpt")
		row := tenantRow{Tenant: id, Path: path}
		if err := fillTenantRow(&row, path); err != nil {
			row.Err = err.Error()
			bad++
		}
		rows = append(rows, row)
	}

	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rows); err != nil {
			return err
		}
	} else {
		fmt.Printf("%s: %d hibernated tenants\n", dir, len(rows))
		if len(rows) > 0 {
			tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
			fmt.Fprintln(tw, "  TENANT\tFRAMES\tWINDOW\tSHARDS\tROWS\tCOV BOUND\tREL BOUND\tBYTES")
			for _, row := range rows {
				if row.Err != "" {
					fmt.Fprintf(tw, "  %s\t-\t-\t-\t-\t%s\t\t\n", row.Tenant, row.Err)
					continue
				}
				cov, rel := "-", "-"
				rowsSeen := 0
				if c := row.Certificate; c != nil {
					cov = fmt.Sprintf("%.6g", c.CovBound)
					rel = fmt.Sprintf("%.6g", c.RelBound)
					rowsSeen = c.RowsSeen
				}
				fmt.Fprintf(tw, "  %s\t%d\t%d\t%d\t%d\t%s\t%s\t%d\n",
					row.Tenant, row.Ingests, row.Window, row.Shards, rowsSeen, cov, rel, row.Bytes)
			}
			tw.Flush()
		}
	}
	if bad > 0 {
		return fmt.Errorf("%d of %d tenant checkpoints failed to decode", bad, len(rows))
	}
	return nil
}

// fillTenantRow decodes one hibernation file; the checkpoint must hold
// a monitor state (that is what the tenant registry writes).
func fillTenantRow(row *tenantRow, path string) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	row.Bytes = len(b)
	state, err := ckpt.Unmarshal(b)
	if err != nil {
		return err
	}
	ms, ok := state.(*pipeline.MonitorState)
	if !ok {
		return fmt.Errorf("holds %T, not a monitor state", state)
	}
	row.Ingests = ms.Ingests
	row.Window = len(ms.Frames)
	for _, ss := range ms.Shards {
		if ss != nil {
			row.Shards++
		}
	}
	// The aggregate certificate composes additively across the tenant's
	// shards — the same bound the registry journals at hibernation.
	if cert := ms.Certificate(); cert.Rows > 0 {
		row.Certificate = &jsonCert{
			Ell: cert.Ell, Dim: cert.Dim, RowsSeen: cert.Rows,
			Rotations: cert.Rotations, ShrinkMass: cert.ShrinkMass,
			FrobMass: cert.FrobMass, CovBound: cert.CovBound(),
			RelBound: cert.RelBound(), AprioriBound: cert.AprioriBound(),
		}
	}
	return nil
}

// aramsFD returns the FD ledger inside an ARAMS state, whichever
// variant carries it.
func aramsFD(s *sketch.ARAMSState) *sketch.FDState {
	switch {
	case s.RankAdaptive != nil:
		return &s.RankAdaptive.FD
	case s.FD != nil:
		return s.FD
	}
	return nil
}

func fillARAMS(info *jsonInfo, s *sketch.ARAMSState) {
	info.Beta = &s.Cfg.Beta
	switch {
	case s.RankAdaptive != nil:
		info.Certificate = certOf(&s.RankAdaptive.FD)
		g := s.RankAdaptive.Grows
		info.RankGrows = &g
	case s.FD != nil:
		info.Certificate = certOf(s.FD)
	}
}
