// Command ckptinfo inspects ARAMS checkpoint files: it prints the
// frame header (version, kind, payload size, checksum verdict) and a
// per-kind summary of the decoded state — the operator's first stop
// when deciding whether a checkpoint is safe to restore from.
//
// Usage:
//
//	ckptinfo ckpt/lclsmon.ckpt [more.ckpt ...]
//
// Exit status is non-zero if any file fails to decode, so the tool can
// gate a restore in a restart script.
package main

import (
	"flag"
	"fmt"
	"os"

	"arams/internal/ckpt"
	"arams/internal/pipeline"
	"arams/internal/sketch"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: %s <checkpoint-file> [...]\n", os.Args[0])
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}
	bad := 0
	for _, path := range flag.Args() {
		if err := describe(path); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", path, err)
			bad++
		}
	}
	if bad > 0 {
		os.Exit(1)
	}
}

// describe prints one file's header and state summary. Header problems
// (bad magic, checksum mismatch, truncation) are reported with as much
// of the header as could be read before the error is returned.
func describe(path string) error {
	b, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	fmt.Printf("%s: %d bytes\n", path, len(b))
	h, err := ckpt.Peek(b)
	if err != nil {
		return err
	}
	fmt.Printf("  frame:    version %d, kind %s, payload %d bytes, checksum ok\n",
		h.Version, h.Kind, h.PayloadLen)
	state, err := ckpt.Unmarshal(b)
	if err != nil {
		return err
	}
	describeState(state, "  ")
	return nil
}

func describeState(state any, indent string) {
	switch s := state.(type) {
	case *sketch.FDState:
		describeFD(s, indent)
	case *sketch.RankAdaptiveState:
		describeRankAdaptive(s, indent)
	case *sketch.PriorityState:
		fmt.Printf("%ssampler:  m=%d, seen %d rows, %d entries held\n",
			indent, s.M, s.Seen, len(s.Entries))
	case *sketch.ARAMSState:
		describeARAMS(s, indent)
	case *pipeline.MonitorState:
		fmt.Printf("%smonitor:  %d frames ingested, window %d holding %d frames\n",
			indent, s.Ingests, s.Window, len(s.Frames))
		if s.Sketch == nil {
			fmt.Printf("%ssketch:   none (nothing ingested yet)\n", indent)
		} else {
			describeARAMS(s.Sketch, indent)
		}
	default:
		fmt.Printf("%sstate:    %T (no summary available)\n", indent, s)
	}
}

func describeFD(s *sketch.FDState, indent string) {
	fmt.Printf("%ssketch:   frequent-directions ℓ=%d d=%d, %d/%d buffer rows, %d rotations, %d rows seen\n",
		indent, s.Ell, s.D, s.NextZero, 2*s.Ell, s.Rotations, s.Seen)
	fmt.Printf("%serror:    accumulated shrinkage Δ=%.6g (covariance bound ‖AᵀA−BᵀB‖₂ ≤ Δ)\n",
		indent, s.TotalDelta)
}

func describeRankAdaptive(s *sketch.RankAdaptiveState, indent string) {
	describeFD(&s.FD, indent)
	fmt.Printf("%sadaptive: ν=%d ε=%g estimator=%d, %d rank grows, %d recent rows ringed\n",
		indent, s.Nu, s.Eps, int(s.Estimator), s.Grows, len(s.Recent))
}

func describeARAMS(s *sketch.ARAMSState, indent string) {
	fmt.Printf("%sarams:    d=%d, β=%g (sampling %v)\n",
		indent, s.D, s.Cfg.Beta, s.Cfg.Beta < 1)
	switch {
	case s.RankAdaptive != nil:
		describeRankAdaptive(s.RankAdaptive, indent)
	case s.FD != nil:
		describeFD(s.FD, indent)
	}
}
