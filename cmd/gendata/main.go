// Command gendata generates the synthetic evaluation matrices of §V
// (random factors with prescribed singular-value decay) and writes them
// to a binary matrix file — the counterpart of the paper artifact's
// genData.py.
//
// Usage:
//
//	gendata -n 15000 -d 1000 -rank 500 -decay exponential -out data.gmat
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"arams/internal/mat"
	"arams/internal/synth"
)

func main() {
	n := flag.Int("n", 2000, "rows (samples)")
	d := flag.Int("d", 400, "columns (features)")
	rank := flag.Int("rank", 200, "intrinsic rank")
	decay := flag.String("decay", "exponential",
		"singular-value profile: sub-exponential | exponential | super-exponential | cubic")
	out := flag.String("out", "data.gmat", "output path")
	seed := flag.Uint64("seed", 1, "RNG seed")
	flag.Parse()

	var dk synth.Decay
	switch *decay {
	case "sub-exponential":
		dk = synth.SubExponential
	case "exponential":
		dk = synth.Exponential
	case "super-exponential":
		dk = synth.SuperExponential
	case "cubic":
		dk = synth.Cubic
	default:
		log.Fatalf("gendata: unknown decay %q", *decay)
	}

	ds := synth.Generate(synth.Params{
		N: *n, D: *d, Rank: *rank, Decay: dk, Seed: *seed,
	})
	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	if err := mat.WriteMatrix(f, ds.A); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	info, _ := os.Stat(*out)
	fmt.Printf("wrote %d×%d %s-decay matrix (rank %d, σ₀=%.3g, σ_r=%.3g) to %s (%.1f MB)\n",
		*n, *d, dk, *rank, ds.Sigmas[0], ds.Sigmas[len(ds.Sigmas)-1], *out,
		float64(info.Size())/1e6)
}
