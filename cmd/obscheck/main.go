// Command obscheck validates a live observability endpoint set — the
// CI endpoint-smoke contract. Pointed at a running lclsmon (or any
// process serving the internal/obs mux) it verifies that:
//
//   - /metrics parses as Prometheus text exposition format 0.0.4
//     (TYPE lines, label syntax, histogram series completeness — see
//     obs.ValidateExposition), and contains every metric named in
//     -want;
//   - /tracez?format=json unmarshals into obs.TracezPayload and
//     survives a marshal→unmarshal round trip; with -min-traces N it
//     must hold at least N retained traces, every one of them
//     *connected*: each span's parent chain reaches the trace root;
//   - /metrics.json parses as a JSON object;
//   - /audit and /healthz answer 200 (-skip-audit drops the /audit
//     check for processes that don't mount it, e.g. fabricworker);
//   - with -want-spans, at least one retained trace on /tracez contains
//     every named span — the cross-process stitch check (a fabric run
//     must show worker_absorb spans inside the coordinator's traces);
//   - with -fleet-workers, /fleetz?format=prom passes ValidateExposition
//     and carries a worker="<name>" label for every listed member, and
//     /fleetz?format=json parses into obs.FleetzPayload;
//   - with -tenants, /tenantz?format=prom passes ValidateExposition and
//     carries a tenant="<id>" label for every listed tenant, and
//     /tenantz?format=json parses — the multi-tenant registry check;
//   - with -forbid-labels, no sample on /metrics carries any of the
//     listed label keys — the guard that a single-tenant run's metric
//     names stay byte-identical to the historical unlabeled series
//     (no label explosion on the default path).
//
// Any violation prints the failing check and exits nonzero, so a CI
// step is just `obscheck -base http://127.0.0.1:9090 ...`.
//
// Usage:
//
//	obscheck -base http://127.0.0.1:9090 \
//	  -want arams_stage_duration_seconds,arams_stage_cpu_seconds \
//	  -min-traces 1 -fleet-workers coordinator,worker0
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"time"

	"arams/internal/obs"
)

func main() {
	base := flag.String("base", "http://127.0.0.1:9090", "base URL of the observability server")
	want := flag.String("want", "", "comma-separated metric names that must appear in /metrics")
	minTraces := flag.Int("min-traces", 0, "require at least this many retained traces in /tracez, each fully connected")
	wantSpans := flag.String("want-spans", "", "comma-separated span names; each must appear in at least one retained trace on /tracez")
	fleetWorkers := flag.String("fleet-workers", "", "comma-separated fleet member names; check /fleetz exposition validity and per-worker labels")
	tenantsWant := flag.String("tenants", "", "comma-separated tenant IDs; check /tenantz exposition validity and per-tenant labels")
	forbidLabels := flag.String("forbid-labels", "", "comma-separated label keys that must not appear on any /metrics sample (e.g. tenant for single-tenant runs)")
	skipAudit := flag.Bool("skip-audit", false, "skip the /audit check (for processes that don't mount it, e.g. fabricworker)")
	timeout := flag.Duration("timeout", 10*time.Second, "per-request timeout")
	flag.Parse()

	c := &checker{base: strings.TrimRight(*base, "/"), client: &http.Client{Timeout: *timeout}}
	c.checkMetrics(splitWant(*want))
	c.checkTracez(*minTraces, splitWant(*wantSpans))
	c.checkMetricsJSON()
	if workers := splitWant(*fleetWorkers); len(workers) > 0 {
		c.checkFleetz(workers)
	}
	if ids := splitWant(*tenantsWant); len(ids) > 0 {
		c.checkTenantz(ids)
	}
	if keys := splitWant(*forbidLabels); len(keys) > 0 {
		c.checkForbidLabels(keys)
	}
	if !*skipAudit {
		c.checkOK("/audit")
	}
	c.checkOK("/healthz")

	if c.failures > 0 {
		fmt.Fprintf(os.Stderr, "obscheck: %d check(s) failed\n", c.failures)
		os.Exit(1)
	}
	fmt.Printf("obscheck: all checks passed against %s\n", c.base)
}

func splitWant(s string) []string {
	var names []string
	for _, n := range strings.Split(s, ",") {
		if n = strings.TrimSpace(n); n != "" {
			names = append(names, n)
		}
	}
	return names
}

type checker struct {
	base     string
	client   *http.Client
	failures int
}

func (c *checker) failf(format string, args ...interface{}) {
	c.failures++
	fmt.Fprintf(os.Stderr, "FAIL: "+format+"\n", args...)
}

func (c *checker) passf(format string, args ...interface{}) {
	fmt.Printf("ok:   "+format+"\n", args...)
}

// get fetches a path and returns the body, failing the check on
// transport errors or non-200 statuses.
func (c *checker) get(path string) []byte {
	resp, err := c.client.Get(c.base + path)
	if err != nil {
		c.failf("GET %s: %v", path, err)
		return nil
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		c.failf("GET %s: reading body: %v", path, err)
		return nil
	}
	if resp.StatusCode != http.StatusOK {
		c.failf("GET %s: status %d", path, resp.StatusCode)
		return nil
	}
	return body
}

func (c *checker) checkOK(path string) {
	if c.get(path) != nil {
		c.passf("%s answers 200", path)
	}
}

func (c *checker) checkMetrics(want []string) {
	body := c.get("/metrics")
	if body == nil {
		return
	}
	if err := obs.ValidateExposition(bytes.NewReader(body)); err != nil {
		c.failf("/metrics is not valid exposition format: %v", err)
		return
	}
	c.passf("/metrics parses as Prometheus exposition format (%d bytes)", len(body))
	for _, name := range want {
		if !hasMetric(body, name) {
			c.failf("/metrics is missing metric %q", name)
			continue
		}
		c.passf("/metrics exposes %s", name)
	}
}

// hasMetric reports whether the exposition contains a sample (not just
// a comment) for the metric — a line starting with name followed by
// '{', ' ', or a histogram suffix.
func hasMetric(body []byte, name string) bool {
	for _, line := range strings.Split(string(body), "\n") {
		if strings.HasPrefix(line, "#") || !strings.HasPrefix(line, name) {
			continue
		}
		rest := line[len(name):]
		if rest == "" {
			continue
		}
		switch rest[0] {
		case '{', ' ':
			return true
		case '_':
			for _, suf := range []string{"_bucket", "_sum", "_count"} {
				if strings.HasPrefix(rest, suf) {
					return true
				}
			}
		}
	}
	return false
}

func (c *checker) checkTracez(minTraces int, wantSpans []string) {
	body := c.get("/tracez?format=json")
	if body == nil {
		return
	}
	var payload obs.TracezPayload
	if err := json.Unmarshal(body, &payload); err != nil {
		c.failf("/tracez?format=json does not unmarshal: %v", err)
		return
	}
	// Round trip: what the server sent must survive re-encoding, so
	// machine consumers can store and replay dumps losslessly.
	re, err := json.Marshal(payload)
	if err != nil {
		c.failf("/tracez payload does not re-marshal: %v", err)
		return
	}
	var again obs.TracezPayload
	if err := json.Unmarshal(re, &again); err != nil {
		c.failf("/tracez payload does not round-trip: %v", err)
		return
	}
	if len(again.Traces) != len(payload.Traces) {
		c.failf("/tracez round trip changed trace count: %d != %d", len(again.Traces), len(payload.Traces))
		return
	}
	c.passf("/tracez?format=json round-trips (%d trace(s))", len(payload.Traces))

	if len(payload.Traces) < minTraces {
		c.failf("/tracez holds %d trace(s), want >= %d", len(payload.Traces), minTraces)
		return
	}
	for _, tr := range payload.Traces {
		if err := connected(tr); err != nil {
			c.failf("trace %s (%s) is not connected: %v", tr.Trace, tr.Root, err)
			return
		}
	}
	if minTraces > 0 {
		c.passf("all %d retained trace(s) are connected parent→child trees", len(payload.Traces))
	}
	for _, name := range wantSpans {
		found := false
	scan:
		for _, tr := range payload.Traces {
			for _, sp := range tr.Spans {
				if sp.Name == name {
					found = true
					break scan
				}
			}
		}
		if !found {
			c.failf("/tracez holds no trace containing span %q", name)
			continue
		}
		c.passf("/tracez contains span %s", name)
	}
}

// checkFleetz validates the merged fleet view: the Prometheus form must
// pass the same exposition lint as /metrics and carry every expected
// member's worker label; the JSON form must parse.
func (c *checker) checkFleetz(workers []string) {
	body := c.get("/fleetz?format=prom")
	if body == nil {
		return
	}
	if err := obs.ValidateExposition(bytes.NewReader(body)); err != nil {
		c.failf("/fleetz?format=prom is not valid exposition format: %v", err)
		return
	}
	c.passf("/fleetz?format=prom parses as Prometheus exposition format (%d bytes)", len(body))
	for _, w := range workers {
		label := fmt.Sprintf("worker=%q", w)
		if !strings.Contains(string(body), label) {
			c.failf("/fleetz carries no series labeled %s", label)
			continue
		}
		c.passf("/fleetz carries series for worker %s", w)
	}
	jbody := c.get("/fleetz?format=json")
	if jbody == nil {
		return
	}
	var payload obs.FleetzPayload
	if err := json.Unmarshal(jbody, &payload); err != nil {
		c.failf("/fleetz?format=json does not unmarshal: %v", err)
		return
	}
	c.passf("/fleetz?format=json parses (%d member(s))", len(payload.Workers))
}

// checkTenantz validates the multi-tenant registry view: the
// Prometheus form must pass the exposition lint and carry every
// expected tenant's label; the JSON form must parse and name them too.
func (c *checker) checkTenantz(ids []string) {
	body := c.get("/tenantz?format=prom")
	if body == nil {
		return
	}
	if err := obs.ValidateExposition(bytes.NewReader(body)); err != nil {
		c.failf("/tenantz?format=prom is not valid exposition format: %v", err)
		return
	}
	c.passf("/tenantz?format=prom parses as Prometheus exposition format (%d bytes)", len(body))
	for _, id := range ids {
		label := fmt.Sprintf("tenant=%q", id)
		if !strings.Contains(string(body), label) {
			c.failf("/tenantz carries no series labeled %s", label)
			continue
		}
		c.passf("/tenantz carries series for tenant %s", id)
	}
	jbody := c.get("/tenantz?format=json")
	if jbody == nil {
		return
	}
	var payload struct {
		Tenants []struct {
			ID    string `json:"id"`
			State string `json:"state"`
		} `json:"tenants"`
	}
	if err := json.Unmarshal(jbody, &payload); err != nil {
		c.failf("/tenantz?format=json does not unmarshal: %v", err)
		return
	}
	c.passf("/tenantz?format=json parses (%d tenant(s))", len(payload.Tenants))
	for _, id := range ids {
		found := false
		for _, t := range payload.Tenants {
			if t.ID == id {
				found = true
				break
			}
		}
		if !found {
			c.failf("/tenantz?format=json omits tenant %q", id)
		}
	}
}

// checkForbidLabels scans every sample line on /metrics for forbidden
// label keys. A single-tenant run must emit exactly the historical
// unlabeled metric names; a tenant="..." leaking into the default path
// would silently double every engine series.
func (c *checker) checkForbidLabels(keys []string) {
	body := c.get("/metrics")
	if body == nil {
		return
	}
	bad := 0
	for _, line := range strings.Split(string(body), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		brace := strings.IndexByte(line, '{')
		if brace < 0 {
			continue
		}
		end := strings.LastIndexByte(line, '}')
		if end < brace {
			continue
		}
		for _, part := range strings.Split(line[brace+1:end], ",") {
			key, _, ok := strings.Cut(part, "=")
			if !ok {
				continue
			}
			key = strings.TrimSpace(key)
			for _, forbidden := range keys {
				if key == forbidden {
					c.failf("/metrics sample carries forbidden label %q: %s", forbidden, line)
					bad++
				}
			}
		}
	}
	if bad == 0 {
		c.passf("/metrics carries none of the forbidden label keys (%s)", strings.Join(keys, ", "))
	}
}

// connected verifies one trace is a single tree: exactly one root span
// (Parent == 0), and every other span's parent chain reaches it.
func connected(tr obs.TraceRecord) error {
	byID := make(map[obs.ID]obs.SpanRecord, len(tr.Spans))
	var roots int
	for _, sp := range tr.Spans {
		if sp.Trace != tr.Trace {
			return fmt.Errorf("span %s carries trace %s", sp.Span, sp.Trace)
		}
		byID[sp.Span] = sp
		if sp.Parent == 0 {
			roots++
		}
	}
	if roots != 1 {
		return fmt.Errorf("%d root spans, want 1", roots)
	}
	for _, sp := range tr.Spans {
		seen := map[obs.ID]bool{}
		cur := sp
		for cur.Parent != 0 {
			if seen[cur.Span] {
				return fmt.Errorf("parent cycle at span %s", cur.Span)
			}
			seen[cur.Span] = true
			parent, ok := byID[cur.Parent]
			if !ok {
				return fmt.Errorf("span %s (%s) has unretained parent %s", sp.Span, sp.Name, cur.Parent)
			}
			cur = parent
		}
	}
	return nil
}

func (c *checker) checkMetricsJSON() {
	body := c.get("/metrics.json")
	if body == nil {
		return
	}
	var doc map[string]interface{}
	if err := json.Unmarshal(body, &doc); err != nil {
		c.failf("/metrics.json does not parse: %v", err)
		return
	}
	c.passf("/metrics.json parses (%d top-level keys)", len(doc))
}
