// Command lclssim generates simulated LCLS runs and writes them to the
// binary run format, playing the role of the facility DAQ for the
// offline analysis tools (the counterpart of the paper artifact's
// genData.py, but for detector images rather than synthetic matrices).
//
// With -listen the process serves the internal/obs observability
// endpoints (/metrics, /metrics.json, /healthz, /statusz,
// /debug/pprof/) and stays up after writing the run so generator
// timings can be scraped.
//
// With -mix the simulator produces a whole multi-tenant workload in one
// invocation: a comma-separated list of tenant=kind pairs (kinds beam
// and diffraction, interleavable freely) writes one run file per tenant
// into -out-dir, each with a distinct seed derived from -seed, ready to
// feed lclsmon -tenants.
//
// Usage:
//
//	lclssim -kind beam -frames 500 -size 64 -out run.lcls
//	lclssim -kind diffraction -frames 400 -size 128 -out run.lcls
//	lclssim -mix amo=beam,cxi=diffraction,mfx=beam -frames 200 -out-dir runs
package main

import (
	"flag"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"

	"arams/internal/audit"
	"arams/internal/lcls"
	"arams/internal/obs"
)

func main() {
	kind := flag.String("kind", "beam", "run type: beam | diffraction")
	frames := flag.Int("frames", 500, "number of frames")
	size := flag.Int("size", 64, "frame side length in pixels")
	out := flag.String("out", "run.lcls", "output path")
	seed := flag.Uint64("seed", 1, "RNG seed")
	exp := flag.String("experiment", "xppc00121", "experiment name stored in the header")
	runNum := flag.Int("run", 510, "run number stored in the header")
	exotic := flag.Float64("exotic", 0.02, "fraction of exotic shots (beam runs)")
	mix := flag.String("mix", "", "multi-tenant workload: comma-separated tenant=kind pairs; writes one run per tenant into -out-dir")
	outDir := flag.String("out-dir", "runs", "output directory for -mix run files (tenant.lcls per tenant)")
	listen := flag.String("listen", "", "serve /metrics, /statusz, /debug/pprof on this address (e.g. :9091)")
	verbosity := flag.Int("v", 0, "log verbosity: 0=info, 1=debug")
	flag.Parse()

	level := slog.LevelInfo
	if *verbosity >= 1 {
		level = slog.LevelDebug
	}
	slog.SetDefault(slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level})))

	hold := func() {}
	if *listen != "" {
		ln, err := net.Listen("tcp", *listen)
		if err != nil {
			fatal("starting observability server", err)
		}
		// Journal-only audit surface: the simulator has no sketch to
		// certify, but events other tooling records still show up.
		obs.Handle("/audit", audit.Handler(nil, nil))
		slog.Info("observability server listening",
			"addr", ln.Addr().String(),
			"endpoints", "/metrics /metrics.json /healthz /statusz /audit /debug/pprof/")
		go func() {
			if err := (&http.Server{Handler: obs.Handler()}).Serve(ln); err != nil {
				slog.Error("observability server stopped", "err", err)
			}
		}()
		hold = func() {
			slog.Info("generation complete; still serving observability endpoints — Ctrl-C to exit")
			ch := make(chan os.Signal, 1)
			signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
			<-ch
		}
	}

	if *mix != "" {
		// Multi-tenant workload: one run file per tenant, each with a
		// seed and run number derived from its position so the streams
		// differ but the whole workload regenerates reproducibly.
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fatal("creating output directory", err)
		}
		tenants := 0
		for _, part := range strings.Split(*mix, ",") {
			part = strings.TrimSpace(part)
			if part == "" {
				continue
			}
			name, tkind, ok := strings.Cut(part, "=")
			if !ok || name == "" {
				slog.Error("bad -mix entry (want tenant=kind)", "entry", part)
				os.Exit(1)
			}
			i := uint64(tenants)
			run := generate(tkind, *frames, *size, *seed+1+i*7919, *exotic,
				*exp, *runNum+tenants)
			writeRun(run, filepath.Join(*outDir, name+".lcls"), tkind, *size)
			tenants++
		}
		if tenants == 0 {
			slog.Error("-mix named no tenants")
			os.Exit(1)
		}
		slog.Info("workload written", "tenants", tenants, "dir", *outDir)
		hold()
		return
	}

	run := generate(*kind, *frames, *size, *seed, *exotic, *exp, *runNum)
	writeRun(run, *out, *kind, *size)
	hold()
}

// generate synthesizes one run of the given kind.
func generate(kind string, frames, size int, seed uint64, exotic float64, exp string, runNum int) *lcls.Run {
	genSpan := obs.StartSpan("generate")
	framesGenerated := obs.Default().Counter("arams_sim_frames_total")
	run := &lcls.Run{Experiment: exp, RunNumber: runNum}
	switch kind {
	case "beam":
		run.Detector = lcls.BeamDetector
		bg := lcls.NewBeamGenerator(lcls.BeamConfig{
			Size: size, ExoticFrac: exotic, Seed: seed,
		})
		for i := 0; i < frames; i++ {
			f := bg.Next()
			label := 0
			if f.Params.Exotic {
				label = 1
			}
			run.Append(f.Image, label)
			framesGenerated.Inc()
		}
	case "diffraction":
		run.Detector = lcls.AreaDetector
		dg := lcls.NewDiffractionGenerator(lcls.DiffractionConfig{
			Size: size, Seed: seed,
		})
		fs, labels := dg.Generate(frames)
		for i, f := range fs {
			run.Append(f.Image, labels[i])
			framesGenerated.Inc()
		}
	default:
		slog.Error("unknown kind (want beam or diffraction)", "kind", kind)
		os.Exit(1)
	}
	genDur := genSpan.End()
	slog.Debug("generation finished", "kind", kind, "duration", genDur.Round(1e6))
	return run
}

// writeRun writes one run file and logs the result.
func writeRun(run *lcls.Run, path, kind string, size int) {
	writeSpan := obs.StartSpan("write_run")
	f, err := os.Create(path)
	if err != nil {
		fatal("creating output file", err)
	}
	n, err := run.WriteTo(f)
	if err != nil {
		fatal("writing run", err)
	}
	if err := f.Close(); err != nil {
		fatal("closing run file", err)
	}
	writeSpan.End()

	slog.Info("run written",
		"kind", kind, "experiment", run.Experiment, "run", run.RunNumber,
		"frames", run.Len(), "size", size,
		"megabytes", float64(n)/1e6, "path", path)
}

func fatal(msg string, err error) {
	slog.Error(msg, "err", err)
	os.Exit(1)
}
