// Command lclssim generates simulated LCLS runs and writes them to the
// binary run format, playing the role of the facility DAQ for the
// offline analysis tools (the counterpart of the paper artifact's
// genData.py, but for detector images rather than synthetic matrices).
//
// Usage:
//
//	lclssim -kind beam -frames 500 -size 64 -out run.lcls
//	lclssim -kind diffraction -frames 400 -size 128 -out run.lcls
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"arams/internal/lcls"
)

func main() {
	kind := flag.String("kind", "beam", "run type: beam | diffraction")
	frames := flag.Int("frames", 500, "number of frames")
	size := flag.Int("size", 64, "frame side length in pixels")
	out := flag.String("out", "run.lcls", "output path")
	seed := flag.Uint64("seed", 1, "RNG seed")
	exp := flag.String("experiment", "xppc00121", "experiment name stored in the header")
	runNum := flag.Int("run", 510, "run number stored in the header")
	exotic := flag.Float64("exotic", 0.02, "fraction of exotic shots (beam runs)")
	flag.Parse()

	run := &lcls.Run{Experiment: *exp, RunNumber: *runNum}
	switch *kind {
	case "beam":
		run.Detector = lcls.BeamDetector
		bg := lcls.NewBeamGenerator(lcls.BeamConfig{
			Size: *size, ExoticFrac: *exotic, Seed: *seed,
		})
		for i := 0; i < *frames; i++ {
			f := bg.Next()
			label := 0
			if f.Params.Exotic {
				label = 1
			}
			run.Append(f.Image, label)
		}
	case "diffraction":
		run.Detector = lcls.AreaDetector
		dg := lcls.NewDiffractionGenerator(lcls.DiffractionConfig{
			Size: *size, Seed: *seed,
		})
		fs, labels := dg.Generate(*frames)
		for i, f := range fs {
			run.Append(f.Image, labels[i])
		}
	default:
		log.Fatalf("lclssim: unknown kind %q (want beam or diffraction)", *kind)
	}

	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	n, err := run.WriteTo(f)
	if err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s run %s:%d — %d frames of %d×%d (%.1f MB) to %s\n",
		*kind, run.Experiment, run.RunNumber, run.Len(), *size, *size,
		float64(n)/1e6, *out)
}
