// Command aramsbench regenerates every table and figure of the paper's
// evaluation section on synthetic and simulated-LCLS data.
//
// Usage:
//
//	aramsbench -exp all             # run everything at laptop scale
//	aramsbench -exp fig1            # Fig. 1 ablation panels
//	aramsbench -exp fig1sv          # Fig. 1 singular-value panel
//	aramsbench -exp fig2            # Fig. 2 strong scaling
//	aramsbench -exp fig3            # Fig. 3 error vs cores
//	aramsbench -exp fig5            # Fig. 5 beam-profile embedding
//	aramsbench -exp fig6            # Fig. 6 diffraction clustering
//	aramsbench -exp runtime         # §VI-B throughput study
//	aramsbench -exp probes          # Alg. 1 probe-count ablation
//	aramsbench -exp beta            # priority-sampling β ablation
//	aramsbench -exp kernels         # reference-vs-blocked kernel timings
//	aramsbench -exp ingest          # sharded-engine ingest throughput
//	aramsbench -quick               # fast kernel smoke run (CI)
//	aramsbench -exp ingest -quick   # fast ingest smoke run (CI)
//	aramsbench -exp fig1 -full      # paper-scale dimensions (slow)
//	aramsbench -exp fig2 -csv       # emit CSV instead of tables
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"arams/internal/bench"
	"arams/internal/viz"
)

func main() {
	exp := flag.String("exp", "all", "experiment: all|fig1sv|fig1|fig2|fig3|fig5|fig6|runtime|probes|beta|estimators|arity|svd|baselines|kernels|ingest|fabric")
	full := flag.Bool("full", false, "use paper-scale dimensions (slow, memory-hungry)")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	htmlDir := flag.String("htmldir", "", "also write interactive HTML figures to this directory")
	seed := flag.Uint64("seed", 1, "base RNG seed")
	quick := flag.Bool("quick", false, "run a reduced kernel benchmark as a smoke test and exit")
	kernelOut := flag.String("kernelout", "BENCH_kernels.json", "output path for -exp kernels JSON report (empty to skip)")
	ingestOut := flag.String("ingestout", "BENCH_ingest.json", "output path for -exp ingest JSON report (empty to skip)")
	ingestAssert := flag.Bool("ingestassert", false, "with -exp ingest: fail if measured shards=4 is slower than serial on a >=4-core host, or if the adaptive cadence does not beat fixed on the quiet stream")
	flag.Parse()

	if *quick {
		// CI smoke: reduced-shape sweeps, table to stdout, no file
		// written. Exercises the full harness path in seconds.
		if *exp == "fabric" {
			bench.FabricSweep(*seed, true).Print(os.Stdout)
			return
		}
		if *exp == "ingest" {
			report, t := bench.IngestSweep(*seed, true)
			t.Print(os.Stdout)
			if *ingestAssert {
				if err := report.Assert(); err != nil {
					fmt.Fprintf(os.Stderr, "aramsbench: %v\n", err)
					os.Exit(1)
				}
				fmt.Fprintln(os.Stderr, "ingest assertions passed")
			}
			return
		}
		_, t := bench.KernelSweep(*seed, true)
		t.Print(os.Stdout)
		return
	}

	fig1 := bench.DefaultFig1()
	scaling := bench.DefaultScaling()
	embed := bench.DefaultEmbed()
	rt := bench.DefaultRuntime()
	if *full {
		fig1 = bench.FullFig1()
		scaling = bench.FullScaling()
		embed.Frames = 2000
		embed.ImgSize = 96
		rt = bench.FullRuntime()
	}
	fig1.Seed = *seed
	scaling.Seed = *seed + 1
	embed.Seed = *seed + 2
	rt.Seed = *seed + 3

	var tables []*bench.Table
	add := func(ts ...*bench.Table) { tables = append(tables, ts...) }
	var charts []namedChart
	addChart := func(name string, c *viz.Chart) {
		if *htmlDir != "" {
			charts = append(charts, namedChart{name: name, chart: c})
		}
	}

	run := func(name string) {
		switch name {
		case "fig1sv":
			t := bench.Fig1SingularValues(fig1)
			add(t)
			addChart("fig1_singular_values", bench.ChartFig1SV(t))
		case "fig1":
			ts := bench.Fig1ErrorRuntime(fig1)
			add(ts...)
			for i, t := range ts {
				addChart(fmt.Sprintf("fig1_panel%d", i+2), bench.ChartFig1(t))
			}
		case "fig2":
			t := bench.Fig2Scaling(scaling)
			add(t)
			addChart("fig2_strong_scaling", bench.ChartFig2(t))
		case "fig3":
			t := bench.Fig3Error(scaling)
			add(t)
			addChart("fig3_error_vs_cores", bench.ChartFig3(t))
		case "fig5":
			add(bench.Fig5BeamProfile(embed)...)
		case "fig6":
			add(bench.Fig6Diffraction(embed))
		case "runtime":
			add(bench.RuntimeStudy(rt))
		case "probes":
			t := bench.ProbeSweep(*seed + 4)
			add(t)
			addChart("ablation_probes", bench.ChartXYColumns(t, 0, 1, true))
		case "beta":
			t := bench.BetaSweep(fig1)
			add(t)
			addChart("ablation_beta", bench.ChartXYColumns(t, 0, 1, false))
		case "estimators":
			add(bench.EstimatorSweep(*seed + 5))
		case "arity":
			add(bench.AritySweep(scaling))
		case "svd":
			add(bench.SVDBackendSweep(*seed + 6))
		case "baselines":
			add(bench.BaselineSweep(fig1))
		case "kernels":
			// Not part of -exp all: the sweep spends ~1s per timing under
			// testing.Benchmark, and its artifact is the checked-in
			// BENCH_kernels.json rather than a paper figure.
			report, t := bench.KernelSweep(*seed, false)
			add(t)
			if *kernelOut != "" {
				f, err := os.Create(*kernelOut)
				if err != nil {
					fmt.Fprintf(os.Stderr, "aramsbench: %v\n", err)
					os.Exit(1)
				}
				if err := report.WriteJSON(f); err != nil {
					fmt.Fprintf(os.Stderr, "aramsbench: %v\n", err)
					os.Exit(1)
				}
				f.Close()
				fmt.Fprintf(os.Stderr, "wrote %s\n", *kernelOut)
			}
		case "ingest":
			// Also excluded from -exp all: each shard count runs under
			// testing.Benchmark, and the artifact is the checked-in
			// BENCH_ingest.json.
			report, t := bench.IngestSweep(*seed+7, false)
			add(t)
			if *ingestOut != "" {
				f, err := os.Create(*ingestOut)
				if err != nil {
					fmt.Fprintf(os.Stderr, "aramsbench: %v\n", err)
					os.Exit(1)
				}
				if err := report.WriteJSON(f); err != nil {
					fmt.Fprintf(os.Stderr, "aramsbench: %v\n", err)
					os.Exit(1)
				}
				f.Close()
				fmt.Fprintf(os.Stderr, "wrote %s\n", *ingestOut)
			}
			if *ingestAssert {
				if err := report.Assert(); err != nil {
					fmt.Fprintf(os.Stderr, "aramsbench: %v\n", err)
					os.Exit(1)
				}
				fmt.Fprintln(os.Stderr, "ingest assertions passed")
			}
		case "fabric":
			// Excluded from -exp all: measures the distributed fabric's
			// loopback protocol overhead, not a paper figure.
			add(bench.FabricSweep(*seed+8, false))
		default:
			fmt.Fprintf(os.Stderr, "aramsbench: unknown experiment %q\n", name)
			flag.Usage()
			os.Exit(2)
		}
	}

	if *exp == "all" {
		for _, name := range []string{
			"fig1sv", "fig1", "fig2", "fig3", "fig5", "fig6",
			"runtime", "probes", "beta", "estimators", "arity", "svd",
			"baselines",
		} {
			fmt.Fprintf(os.Stderr, "running %s...\n", name)
			run(name)
		}
	} else {
		run(*exp)
	}

	for _, t := range tables {
		if *csv {
			fmt.Printf("# %s\n", t.Title)
			t.CSV(os.Stdout)
			fmt.Println()
		} else {
			t.Print(os.Stdout)
		}
	}

	if *htmlDir != "" {
		if err := os.MkdirAll(*htmlDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "aramsbench: %v\n", err)
			os.Exit(1)
		}
		for _, nc := range charts {
			path := filepath.Join(*htmlDir, nc.name+".html")
			f, err := os.Create(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "aramsbench: %v\n", err)
				os.Exit(1)
			}
			if err := nc.chart.WriteHTML(f); err != nil {
				fmt.Fprintf(os.Stderr, "aramsbench: %v\n", err)
				os.Exit(1)
			}
			f.Close()
			fmt.Fprintf(os.Stderr, "wrote %s\n", path)
		}
	}
}

type namedChart struct {
	name  string
	chart *viz.Chart
}
