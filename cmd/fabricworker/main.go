// Command fabricworker runs one distributed shard worker: a TCP server
// that sketches rows shipped by a fabric coordinator (lclsmon -fabric,
// or fabric.NewCoordinator embedded elsewhere). The worker needs no
// sketch configuration of its own — the coordinator's Hello carries the
// shard-derived config — so a fleet is N identical processes:
//
//	fabricworker -listen :9750
//	fabricworker -listen 127.0.0.1:0 -addr-file worker.addr
//	lclsmon -in run.lcls -checkpoint-dir ckpt -fabric host1:9750,host2:9750
//
// With -listen port 0 the kernel picks a free port and -addr-file
// publishes the bound address for scripts and tests. -obs-listen serves
// the usual observability endpoints (/metrics, /statusz, /tracez,
// /debug/pprof/) next to the data plane (-obs-addr-file publishes its
// bound address). -flight-dir arms a flight recorder whose dumps carry
// -flight-id in their filenames, so a fleet sharing one dump directory
// stays collision-free and a coordinator fault fans out to correlated
// per-worker dumps. The process exits cleanly on SIGINT/SIGTERM; its
// sketch state dies with it by design — a reconnecting coordinator
// rebuilds the shard bit-exactly with restore + replay.
package main

import (
	"flag"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"arams/internal/fabric"
	"arams/internal/obs"
)

func main() {
	listen := flag.String("listen", ":9750", "data-plane listen address (host:port; port 0 for ephemeral)")
	addrFile := flag.String("addr-file", "", "write the bound address to this file (for port-0 listens)")
	obsListen := flag.String("obs-listen", "", "serve /metrics, /statusz, /debug/pprof on this address")
	obsAddrFile := flag.String("obs-addr-file", "", "write the bound observability address to this file (for port-0 obs listens)")
	flightDir := flag.String("flight-dir", "", "arm the flight recorder, dumping to this directory on coordinator fan-out triggers")
	flightID := flag.String("flight-id", "", "stable process identity embedded in flight dump filenames (default: listen address)")
	verbosity := flag.Int("v", 0, "log verbosity: 0=info, 1=debug")
	flag.Parse()

	level := slog.LevelInfo
	if *verbosity >= 1 {
		level = slog.LevelDebug
	}
	slog.SetDefault(slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level})))

	w, err := fabric.NewWorker(*listen)
	if err != nil {
		slog.Error("starting worker", "err", err)
		os.Exit(1)
	}
	slog.Info("fabric worker serving", "addr", w.Addr())

	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(w.Addr()+"\n"), 0o644); err != nil {
			slog.Error("writing addr file", "err", err)
			os.Exit(1)
		}
	}
	if *flightDir != "" {
		ident := *flightID
		if ident == "" {
			ident = w.Addr()
		}
		if _, err := obs.Default().ArmFlightRecorder(obs.FlightConfig{
			Dir: *flightDir, Identity: ident,
		}); err != nil {
			slog.Error("arming flight recorder", "err", err)
			os.Exit(1)
		}
		slog.Info("flight recorder armed", "dir", *flightDir, "identity", ident)
	}
	if *obsListen != "" {
		ln, err := net.Listen("tcp", *obsListen)
		if err != nil {
			slog.Error("starting observability server", "err", err)
			os.Exit(1)
		}
		slog.Info("observability server listening", "addr", ln.Addr().String())
		if *obsAddrFile != "" {
			if err := os.WriteFile(*obsAddrFile, []byte(ln.Addr().String()+"\n"), 0o644); err != nil {
				slog.Error("writing obs addr file", "err", err)
				os.Exit(1)
			}
		}
		go func() {
			if err := (&http.Server{Handler: obs.Handler()}).Serve(ln); err != nil {
				slog.Error("observability server stopped", "err", err)
			}
		}()
	}

	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	<-ch
	slog.Info("shutting down", "frames_absorbed", w.Frames())
	w.Close()
}
