// Command lclsmon runs the full monitoring pipeline on a stored run
// file — the counterpart of the paper artifact's run.py driver: it
// sketches the run with ARAMS in parallel, projects, embeds with UMAP,
// clusters with OPTICS, and writes an interactive HTML embedding with
// hover tooltips (the Bokeh-HTML analog of Figs. 5 and 6).
//
// With -listen the process also serves the live observability
// endpoints of internal/obs — /metrics (Prometheus text),
// /metrics.json, /healthz, /statusz (live dashboard), and
// /debug/pprof/ — and stays up after the run completes so the
// per-stage histograms and sketch gauges can be scraped.
//
// Usage:
//
//	lclssim -kind diffraction -out run.lcls
//	lclsmon -in run.lcls -html embedding.html -listen :9090
package main

import (
	"flag"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"arams/internal/imgproc"
	"arams/internal/lcls"
	"arams/internal/obs"
	"arams/internal/optics"
	"arams/internal/pipeline"
	"arams/internal/sketch"
	"arams/internal/umap"
	"arams/internal/viz"
)

func main() {
	in := flag.String("in", "run.lcls", "input run file")
	html := flag.String("html", "embedding.html", "output HTML path")
	workers := flag.Int("workers", 4, "parallel sketch workers")
	ell := flag.Int("ell", 25, "initial sketch size ℓ")
	eps := flag.Float64("eps", 0, "rank-adaptive error target (0 = fixed rank)")
	beta := flag.Float64("beta", 0.9, "priority-sampling keep fraction")
	latent := flag.Int("latent", 12, "PCA latent dimension")
	useHDBSCAN := flag.Bool("hdbscan", false, "cluster with HDBSCAN* instead of OPTICS")
	reach := flag.String("reach", "", "also write the OPTICS reachability plot to this HTML path")
	seed := flag.Uint64("seed", 1, "RNG seed")
	listen := flag.String("listen", "", "serve /metrics, /statusz, /debug/pprof on this address (e.g. :9090)")
	verbosity := flag.Int("v", 0, "log verbosity: 0=info, 1=debug")
	flag.Parse()

	setupLogging(*verbosity)
	hold := serveObs(*listen)

	f, err := os.Open(*in)
	if err != nil {
		fatal("opening run file", err)
	}
	run, err := lcls.ReadRun(f)
	f.Close()
	if err != nil {
		fatal(fmt.Sprintf("reading %s", *in), err)
	}
	slog.Info("run loaded",
		"experiment", run.Experiment, "run", run.RunNumber,
		"detector", run.Detector, "frames", run.Len(),
		"width", run.Width, "height", run.Height)

	scfg := sketch.Config{Ell0: *ell, Beta: *beta, Seed: *seed}
	if *eps > 0 {
		scfg.RankAdaptive = true
		scfg.Eps = *eps
		scfg.Nu = 10
	}
	res := pipeline.Process(run.Frames, pipeline.Config{
		Pre:        imgproc.Preprocessor{Normalize: true},
		Sketch:     scfg,
		Workers:    *workers,
		LatentDim:  *latent,
		UMAP:       umap.Config{NNeighbors: 20, NEpochs: 200, Seed: *seed + 1},
		UseHDBSCAN: *useHDBSCAN,
	})

	slog.Info("pipeline complete",
		"directions", res.Basis.RowsN,
		"frames_per_sec", fmt.Sprintf("%.0f", res.SketchThroughput),
		"preprocess", res.PreprocessTime.Round(1e6),
		"sketch_merge", res.SketchTime.Round(1e6),
		"total", res.TotalTime.Round(1e6))
	for stage, d := range res.StageTimes {
		slog.Debug("stage timing", "stage", stage, "duration", d.Round(1e6))
	}
	slog.Info("clustering",
		"clusters", optics.NumClusters(res.Labels),
		"noise_points", countNoise(res.Labels))
	if hasLabels(run.Labels) {
		slog.Info("label agreement", "ari",
			fmt.Sprintf("%.3f", optics.ARI(res.Labels, run.Labels)))
	}
	slog.Info("residual outliers", "top", fmt.Sprint(res.ResidualOutliers))

	tips := make([]string, run.Len())
	for i := range tips {
		tips[i] = fmt.Sprintf("frame %d\nstored label %d\nresidual %.3f",
			i, run.Labels[i], res.Residuals[i])
	}
	plot := viz.FromEmbedding(
		fmt.Sprintf("%s run %d — latent embedding", run.Experiment, run.RunNumber),
		res.Embedding, res.Labels, tips)
	plot.Subtitle = fmt.Sprintf("%d frames, detector %s", run.Len(), run.Detector)
	if err := writeHTML(*html, plot.WriteHTML); err != nil {
		fatal("writing embedding HTML", err)
	}
	slog.Info("embedding written", "path", *html)

	if *reach != "" {
		opt := optics.Run(res.Embedding, 5, math.Inf(1))
		ordLabels := make([]int, len(opt.Order))
		for pos, p := range opt.Order {
			ordLabels[pos] = res.Labels[p]
		}
		rp := &viz.ReachabilityPlot{
			Title:  fmt.Sprintf("%s run %d — OPTICS reachability", run.Experiment, run.RunNumber),
			Values: opt.ReachabilityInOrder(),
			Labels: ordLabels,
		}
		if err := writeHTML(*reach, rp.WriteHTML); err != nil {
			fatal("writing reachability HTML", err)
		}
		slog.Info("reachability plot written", "path", *reach)
	}

	hold()
}

// setupLogging installs a slog text handler on stderr at the level the
// -v flag selects.
func setupLogging(verbosity int) {
	level := slog.LevelInfo
	if verbosity >= 1 {
		level = slog.LevelDebug
	}
	slog.SetDefault(slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level})))
}

// serveObs starts the observability server when addr is non-empty and
// returns a function that blocks until SIGINT/SIGTERM so the endpoints
// outlive the run; with no address it returns a no-op.
func serveObs(addr string) (hold func()) {
	if addr == "" {
		return func() {}
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fatal("starting observability server", err)
	}
	slog.Info("observability server listening",
		"addr", ln.Addr().String(),
		"endpoints", "/metrics /metrics.json /healthz /statusz /debug/pprof/")
	go func() {
		if err := (&http.Server{Handler: obs.Handler()}).Serve(ln); err != nil {
			slog.Error("observability server stopped", "err", err)
		}
	}()
	return func() {
		slog.Info("run complete; still serving observability endpoints — Ctrl-C to exit")
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
		<-ch
	}
}

func writeHTML(path string, write func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(msg string, err error) {
	slog.Error(msg, "err", err)
	os.Exit(1)
}

func countNoise(labels []int) int {
	n := 0
	for _, l := range labels {
		if l == optics.Noise {
			n++
		}
	}
	return n
}

// hasLabels reports whether the stored labels carry any information
// (more than one distinct value).
func hasLabels(labels []int) bool {
	if len(labels) == 0 {
		return false
	}
	first := labels[0]
	for _, l := range labels {
		if l != first {
			return true
		}
	}
	return false
}
