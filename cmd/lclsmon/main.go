// Command lclsmon runs the full monitoring pipeline on a stored run
// file — the counterpart of the paper artifact's run.py driver: it
// sketches the run with ARAMS in parallel, projects, embeds with UMAP,
// clusters with OPTICS, and writes an interactive HTML embedding with
// hover tooltips (the Bokeh-HTML analog of Figs. 5 and 6).
//
// With -listen the process also serves the live observability
// endpoints of internal/obs — /metrics (Prometheus text),
// /metrics.json, /healthz, /statusz (live dashboard), /tracez
// (per-batch trace trees), and /debug/pprof/ — and stays up after the
// run completes so the per-stage histograms and sketch gauges can be
// scraped. -flight-dir arms the fault-triggered flight recorder and
// -frame-budget enables deadline/SLO tracking against the LCLS 120 Hz
// cadence.
//
// With -checkpoint-dir the run switches to streaming mode: frames are
// batch-ingested through pipeline.Monitor (backed by the sharded
// streaming engine — -shards splits the sketch across concurrent
// shard sketchers, -ingest-buffer sizes the engine's bounded async
// queue), the full monitor state (per-shard sketches, RNG positions,
// sliding window) is checkpointed atomically every -checkpoint-every
// frames, and -restore resumes a killed run from the last checkpoint,
// bit-exact per shard, before ingesting the remaining frames.
//
// With -tenants the process becomes a multi-tenant sketch service: each
// listed tenant streams its own run (id=runfile, or a bare id reusing
// -in) through one shared registry — per-tenant engines over the shared
// worker pool, fair-share admission, and LRU/idle hibernation into
// -checkpoint-dir (-tenant-idle, -tenant-max-resident). /tenantz serves
// the live tenant table and per-tenant hot-path metrics carry a
// tenant="<id>" label.
//
// Usage:
//
//	lclssim -kind diffraction -out run.lcls
//	lclsmon -in run.lcls -html embedding.html -listen :9090
//	lclsmon -in run.lcls -checkpoint-dir ckpt -checkpoint-every 256
//	lclsmon -in run.lcls -checkpoint-dir ckpt -shards 4
//	lclsmon -in run.lcls -checkpoint-dir ckpt -restore
//	lclssim -mix amo=beam,cxi=diffraction -out-dir runs
//	lclsmon -tenants amo=runs/amo.lcls,cxi=runs/cxi.lcls -checkpoint-dir tenants -tenant-max-resident 1
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"arams/internal/audit"
	"arams/internal/ckpt"
	"arams/internal/engine"
	"arams/internal/fabric"
	"arams/internal/imgproc"
	"arams/internal/lcls"
	"arams/internal/obs"
	"arams/internal/optics"
	"arams/internal/pipeline"
	"arams/internal/sketch"
	"arams/internal/tenant"
	"arams/internal/umap"
	"arams/internal/viz"
)

func main() {
	in := flag.String("in", "run.lcls", "input run file")
	html := flag.String("html", "embedding.html", "output HTML path")
	workers := flag.Int("workers", 4, "parallel sketch workers")
	ell := flag.Int("ell", 25, "initial sketch size ℓ")
	eps := flag.Float64("eps", 0, "rank-adaptive error target (0 = fixed rank)")
	beta := flag.Float64("beta", 0.9, "priority-sampling keep fraction")
	latent := flag.Int("latent", 12, "PCA latent dimension")
	useHDBSCAN := flag.Bool("hdbscan", false, "cluster with HDBSCAN* instead of OPTICS")
	reach := flag.String("reach", "", "also write the OPTICS reachability plot to this HTML path")
	seed := flag.Uint64("seed", 1, "RNG seed")
	listen := flag.String("listen", "", "serve /metrics, /statusz, /debug/pprof on this address (e.g. :9090)")
	ckptDir := flag.String("checkpoint-dir", "", "streaming mode: checkpoint monitor state into this directory")
	ckptEvery := flag.Int("checkpoint-every", 256, "streaming mode: checkpoint every N ingested frames")
	restore := flag.Bool("restore", false, "resume from the checkpoint in -checkpoint-dir before ingesting")
	window := flag.Int("window", 0, "streaming mode: snapshot window size (0 = whole run)")
	shards := flag.Int("shards", 1, "streaming mode: concurrent sketch shards (1 = serial, bit-exact with previous releases)")
	fabricWorkers := flag.String("fabric", "", "streaming mode: comma-separated fabricworker addresses; one remote shard per worker (overrides -shards)")
	ingestBuffer := flag.Int("ingest-buffer", 0, "streaming mode: bounded async ingest queue capacity (0 = engine default)")
	reconcileAdaptive := flag.Bool("reconcile-adaptive", true, "streaming mode: reconcile shards when marginal sketch shrinkage says the global sketch is stale; false reverts to the fixed frame countdown (bit-exact with the historical merge schedule)")
	tenants := flag.String("tenants", "", "multi-tenant mode: comma-separated id=runfile pairs (bare ids reuse -in); streams are interleaved through one tenant registry with hibernation in -checkpoint-dir")
	tenantIdle := flag.Duration("tenant-idle", 0, "multi-tenant mode: hibernate tenants idle for this long (0 = only residency pressure evicts)")
	tenantMaxResident := flag.Int("tenant-max-resident", 0, "multi-tenant mode: cap on simultaneously resident tenant engines (0 = unlimited)")
	auditLog := flag.String("audit-log", "", "append audit journal events to this JSONL file")
	alarmThreshold := flag.Float64("alarm-threshold", 0.5, "Page-Hinkley λ for the residual drift detector")
	auditEvery := flag.Int("audit-every", 32, "streaming mode: audit the sketch every N frames")
	obsRing := flag.Int("obs-ring", obs.DefaultRingCap, "span ring capacity for /statusz and the flight recorder")
	flightDir := flag.String("flight-dir", "", "arm the flight recorder: dump recent spans and metric deltas to JSONL files in this directory on faults, drift alarms, and deadline burns")
	frameBudget := flag.Duration("frame-budget", 0, "per-frame latency budget for deadline tracking (0 = 1/120 s; negative disables)")
	verbosity := flag.Int("v", 0, "log verbosity: 0=info, 1=debug")
	flag.Parse()

	setupLogging(*verbosity)
	if *obsRing != obs.DefaultRingCap {
		obs.Default().SetRingCap(*obsRing)
	}
	if *flightDir != "" {
		// In fabric mode the recorder carries a stable identity so its
		// dumps cannot collide with worker dumps in a shared directory.
		ident := ""
		if *fabricWorkers != "" {
			ident = "coordinator"
		}
		if _, err := obs.Default().ArmFlightRecorder(obs.FlightConfig{Dir: *flightDir, Identity: ident}); err != nil {
			fatal("arming flight recorder", err)
		}
		slog.Info("flight recorder armed", "dir", *flightDir)
	}
	auditor := setupAudit(*auditLog, *alarmThreshold)
	// /fleetz always serves: single-process runs show just the
	// coordinator's own registry; fabric mode adds one member per worker.
	fleet := obs.NewFleetView(0)
	fleet.IncludeLocal("coordinator", obs.Default())
	obs.Handle("/fleetz", fleet)
	hold := serveObs(*listen)

	if *restore && *ckptDir == "" {
		fatal("flag error", errors.New("-restore requires -checkpoint-dir"))
	}

	scfg := sketch.Config{Ell0: *ell, Beta: *beta, Seed: *seed}
	if *eps > 0 {
		scfg.RankAdaptive = true
		scfg.Eps = *eps
		scfg.Nu = 10
	}
	cfg := pipeline.Config{
		Pre:            imgproc.Preprocessor{Normalize: true},
		Sketch:         scfg,
		Workers:        *workers,
		LatentDim:      *latent,
		UMAP:           umap.Config{NNeighbors: 20, NEpochs: 200, Seed: *seed + 1},
		UseHDBSCAN:     *useHDBSCAN,
		Audit:          auditor,
		AuditEvery:     *auditEvery,
		Shards:         *shards,
		IngestBuffer:   *ingestBuffer,
		ReconcileFixed: !*reconcileAdaptive,
		FrameBudget:    *frameBudget,
	}

	if *tenants != "" {
		if *ckptDir == "" {
			fatal("flag error", errors.New("-tenants requires -checkpoint-dir (the hibernation directory)"))
		}
		if *fabricWorkers != "" {
			fatal("flag error", errors.New("-tenants and -fabric are mutually exclusive"))
		}
		runTenants(*tenants, *in, cfg, tenantOpts{
			dir:         *ckptDir,
			idle:        *tenantIdle,
			maxResident: *tenantMaxResident,
			lambda:      *alarmThreshold,
		})
		hold()
		return
	}

	f, err := os.Open(*in)
	if err != nil {
		fatal("opening run file", err)
	}
	run, err := lcls.ReadRun(f)
	f.Close()
	if err != nil {
		fatal(fmt.Sprintf("reading %s", *in), err)
	}
	slog.Info("run loaded",
		"experiment", run.Experiment, "run", run.RunNumber,
		"detector", run.Detector, "frames", run.Len(),
		"width", run.Width, "height", run.Height)

	if *fabricWorkers != "" {
		if *ckptDir == "" {
			fatal("flag error", errors.New("-fabric requires -checkpoint-dir (streaming mode)"))
		}
		addrs := strings.Split(*fabricWorkers, ",")
		backends := make([]engine.Backend, len(addrs))
		remotes := make([]*fabric.Remote, len(addrs))
		for i, addr := range addrs {
			name := fmt.Sprintf("worker%d", i)
			r, err := fabric.DialRemote(name, strings.TrimSpace(addr), uint32(i),
				engine.ShardSketchConfig(scfg, i), fabric.RemoteConfig{})
			if err != nil {
				fatal(fmt.Sprintf("dialing fabric worker %s", addr), err)
			}
			if r.Degraded() {
				slog.Warn("fabric worker unreachable; shard degraded to in-process sketching",
					"worker", name, "addr", addr)
			}
			// Heartbeats now feed this worker's registry snapshot into
			// /fleetz, and coordinator flight dumps fan out to it.
			r.ArmFleet(fleet)
			backends[i] = r
			remotes[i] = r
		}
		fabric.ArmFleetFlight(remotes)
		cfg.Backends = backends
		cfg.Shards = len(addrs)
		slog.Info("fabric mode: sketching distributed across workers",
			"workers", len(addrs))
	}

	if *ckptDir != "" {
		runStreaming(run, cfg, streamOpts{
			dir:     *ckptDir,
			every:   *ckptEvery,
			restore: *restore,
			window:  *window,
			html:    *html,
		})
		hold()
		return
	}

	res := pipeline.Process(run.Frames, cfg)

	cert := res.ParallelStats.Certificate
	slog.Info("sketch certificate",
		"rows", cert.Rows, "ell", cert.Ell, "rotations", cert.Rotations,
		"cov_bound", fmt.Sprintf("%.6g", cert.CovBound()),
		"rel_bound", fmt.Sprintf("%.6g", cert.RelBound()),
		"apriori_bound", fmt.Sprintf("%.6g", cert.AprioriBound()))
	slog.Info("pipeline complete",
		"directions", res.Basis.RowsN,
		"frames_per_sec", fmt.Sprintf("%.0f", res.SketchThroughput),
		"preprocess", res.PreprocessTime.Round(1e6),
		"sketch_merge", res.SketchTime.Round(1e6),
		"total", res.TotalTime.Round(1e6))
	for stage, d := range res.StageTimes {
		slog.Debug("stage timing", "stage", stage, "duration", d.Round(1e6))
	}
	slog.Info("clustering",
		"clusters", optics.NumClusters(res.Labels),
		"noise_points", countNoise(res.Labels))
	if hasLabels(run.Labels) {
		slog.Info("label agreement", "ari",
			fmt.Sprintf("%.3f", optics.ARI(res.Labels, run.Labels)))
	}
	slog.Info("residual outliers", "top", fmt.Sprint(res.ResidualOutliers))

	tips := make([]string, run.Len())
	for i := range tips {
		tips[i] = fmt.Sprintf("frame %d\nstored label %d\nresidual %.3f",
			i, run.Labels[i], res.Residuals[i])
	}
	plot := viz.FromEmbedding(
		fmt.Sprintf("%s run %d — latent embedding", run.Experiment, run.RunNumber),
		res.Embedding, res.Labels, tips)
	plot.Subtitle = fmt.Sprintf("%d frames, detector %s", run.Len(), run.Detector)
	if err := writeHTML(*html, plot.WriteHTML); err != nil {
		fatal("writing embedding HTML", err)
	}
	slog.Info("embedding written", "path", *html)

	if *reach != "" {
		opt := optics.Run(res.Embedding, 5, math.Inf(1))
		ordLabels := make([]int, len(opt.Order))
		for pos, p := range opt.Order {
			ordLabels[pos] = res.Labels[p]
		}
		rp := &viz.ReachabilityPlot{
			Title:  fmt.Sprintf("%s run %d — OPTICS reachability", run.Experiment, run.RunNumber),
			Values: opt.ReachabilityInOrder(),
			Labels: ordLabels,
		}
		if err := writeHTML(*reach, rp.WriteHTML); err != nil {
			fatal("writing reachability HTML", err)
		}
		slog.Info("reachability plot written", "path", *reach)
	}

	hold()
}

// streamOpts bundles the streaming-mode flags.
type streamOpts struct {
	dir     string
	every   int
	restore bool
	window  int
	html    string
}

// runStreaming is the fault-tolerant path: frames stream in batches
// through a pipeline.Monitor, the monitor state is checkpointed
// atomically every opts.every frames, and with opts.restore the stream
// resumes at the frame index recorded in the last checkpoint. The final
// snapshot over the sliding window is written as the embedding HTML.
func runStreaming(run *lcls.Run, cfg pipeline.Config, opts streamOpts) {
	window := opts.window
	if window <= 0 || window > run.Len() {
		window = run.Len()
	}
	if err := os.MkdirAll(opts.dir, 0o755); err != nil {
		fatal("creating checkpoint directory", err)
	}
	path := filepath.Join(opts.dir, "lclsmon.ckpt")

	var m *pipeline.Monitor
	start := 0
	if opts.restore {
		state, err := ckpt.Load(path)
		switch {
		case err == nil:
			ms, ok := state.(*pipeline.MonitorState)
			if !ok {
				fatal("restoring checkpoint", fmt.Errorf("%s holds %T, not a monitor state", path, state))
			}
			m, err = pipeline.NewMonitorFromState(cfg, ms)
			if err != nil {
				fatal("restoring checkpoint", err)
			}
			start = ms.Ingests
			if start > run.Len() {
				fatal("restoring checkpoint", fmt.Errorf(
					"checkpoint records %d ingests but the run has only %d frames", start, run.Len()))
			}
			slog.Info("restored from checkpoint",
				"path", path, "resume_frame", start, "window_frames", len(ms.Frames))
		case errors.Is(err, os.ErrNotExist):
			slog.Info("no checkpoint to restore; starting fresh", "path", path)
		default:
			fatal("restoring checkpoint", err)
		}
	}
	if m == nil {
		m = pipeline.NewMonitor(cfg, window)
	}

	// Frames are batch-ingested up to the next checkpoint or audit
	// boundary, whichever comes first: the monitor preprocesses each
	// batch with the worker pool and fans it out to the shard
	// sketchers. The engine flushes the auditor at most once per
	// dispatch, so batches must not span audit periods — a stream
	// chunked only by the (much larger) checkpoint interval would
	// starve the drift detectors of samples. Checkpoints still land
	// exactly on their boundary frames, so resume indices match the
	// per-frame behavior.
	auditStep := 0
	if cfg.Audit != nil {
		auditStep = cfg.AuditEvery
	}
	for i := start; i < run.Len(); {
		hi := run.Len()
		for _, step := range []int{opts.every, auditStep} {
			if step > 0 {
				if next := i + step - i%step; next < hi {
					hi = next
				}
			}
		}
		tags := make([]int, hi-i)
		for j := range tags {
			tags[j] = i + j
		}
		m.IngestBatch(run.Frames[i:hi], tags)
		i = hi
		if opts.every > 0 && i%opts.every == 0 {
			if err := ckpt.Save(path, m.State()); err != nil {
				slog.Error("checkpoint failed", "frame", i, "err", err)
			} else {
				slog.Debug("checkpoint written", "frame", i, "path", path)
				journalSave(cfg, i)
			}
		}
	}
	// Final checkpoint so a restart after a completed stream is a no-op.
	if err := ckpt.Save(path, m.State()); err != nil {
		slog.Error("final checkpoint failed", "err", err)
	} else {
		journalSave(cfg, m.Ingested())
	}
	slog.Info("stream complete",
		"frames", m.Ingested(), "resumed_at", start, "directions", m.Ell(), "checkpoint", path)

	snap := m.Snapshot()
	if snap == nil {
		slog.Info("nothing ingested; no embedding written")
		return
	}
	slog.Info("clustering",
		"clusters", optics.NumClusters(snap.Labels),
		"noise_points", countNoise(snap.Labels))
	if hasLabels(run.Labels) {
		stored := make([]int, len(snap.Tags))
		for i, tag := range snap.Tags {
			stored[i] = run.Labels[tag]
		}
		slog.Info("label agreement (window)", "ari",
			fmt.Sprintf("%.3f", optics.ARI(snap.Labels, stored)))
	}

	tips := make([]string, len(snap.Tags))
	for i, tag := range snap.Tags {
		tips[i] = fmt.Sprintf("frame %d\nstored label %d", tag, run.Labels[tag])
	}
	plot := viz.FromEmbedding(
		fmt.Sprintf("%s run %d — streaming embedding", run.Experiment, run.RunNumber),
		snap.Embedding, snap.Labels, tips)
	plot.Subtitle = fmt.Sprintf("%d frames in window of %d ingested, detector %s",
		len(snap.Tags), m.Ingested(), run.Detector)
	if err := writeHTML(opts.html, plot.WriteHTML); err != nil {
		fatal("writing embedding HTML", err)
	}
	slog.Info("embedding written", "path", opts.html)
}

// tenantOpts bundles the multi-tenant flags.
type tenantOpts struct {
	dir         string
	idle        time.Duration
	maxResident int
	lambda      float64
}

// tenantStream is one tenant's workload: an ID and the run it streams.
type tenantStream struct {
	id  string
	run *lcls.Run
}

// parseTenantSpec expands "-tenants id=runfile,id2=runfile2,id3" into
// per-tenant streams (a bare id reuses defaultIn). Run files are loaded
// once and shared between tenants that name the same path.
func parseTenantSpec(spec, defaultIn string) []tenantStream {
	cache := map[string]*lcls.Run{}
	load := func(path string) *lcls.Run {
		if r, ok := cache[path]; ok {
			return r
		}
		f, err := os.Open(path)
		if err != nil {
			fatal("opening tenant run file", err)
		}
		r, err := lcls.ReadRun(f)
		f.Close()
		if err != nil {
			fatal(fmt.Sprintf("reading %s", path), err)
		}
		cache[path] = r
		return r
	}
	var streams []tenantStream
	seen := map[string]bool{}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		id, path, ok := strings.Cut(part, "=")
		if !ok {
			path = defaultIn
		}
		if err := tenant.ValidateID(id); err != nil {
			fatal("flag error", err)
		}
		if seen[id] {
			fatal("flag error", fmt.Errorf("tenant %q listed twice in -tenants", id))
		}
		seen[id] = true
		streams = append(streams, tenantStream{id: id, run: load(path)})
	}
	if len(streams) == 0 {
		fatal("flag error", errors.New("-tenants named no tenants"))
	}
	return streams
}

// runTenants is the sketch-as-a-service path: every tenant's run
// streams through one registry — shared worker pool, per-tenant
// engines, fair-share admission — with frames interleaved round-robin
// across tenants the way a shared facility mixes beamlines. Idle or
// surplus tenants hibernate into opts.dir and the registry restores
// them transparently; /tenantz serves the live tenant table.
func runTenants(spec, defaultIn string, cfg pipeline.Config, opts tenantOpts) {
	streams := parseTenantSpec(spec, defaultIn)

	// Each tenant gets a private auditor (own journal, own drift
	// detector) so audit state rides that tenant's checkpoints and a
	// drift alarm names its tenant. The registry's own admission and
	// eviction events land in the process journal behind /audit.
	cfg.Audit = nil
	lambda := opts.lambda
	window := 0 // per-tenant default: whole-stream window is per-run below
	for _, ts := range streams {
		if ts.run.Len() > window {
			window = ts.run.Len()
		}
	}
	reg, err := tenant.Open(tenant.Config{
		Dir:          opts.dir,
		Pipeline:     cfg,
		Window:       window,
		MaxResident:  opts.maxResident,
		IdleAfter:    opts.idle,
		JanitorEvery: opts.idle / 2,
		NewAuditor: func(id string) *audit.Auditor {
			return audit.New(audit.Config{
				Journal:  audit.NewJournal(audit.DefaultJournalCap),
				Residual: audit.NewPageHinkley(lambda/10, lambda),
				OnAlarm: func(a audit.Alarm) {
					slog.Warn("sketch drift alarm", "tenant", id,
						"signal", a.Signal, "value", fmt.Sprintf("%.6g", a.Value),
						"batch", a.Batch, "journal_seq", a.Seq)
				},
			})
		},
	})
	if err != nil {
		fatal("opening tenant registry", err)
	}
	obs.Handle("/tenantz", reg.Handler())
	slog.Info("multi-tenant mode", "tenants", len(streams),
		"hibernation_dir", opts.dir, "max_resident", opts.maxResident,
		"idle_after", opts.idle)

	// Interleave the workloads frame by frame — the adversarial mix for
	// fair-share admission: every pass touches every tenant, so a capped
	// registry is forced to rotate engines through hibernation while the
	// pump keeps all queues moving.
	total := 0
	for f := 0; ; f++ {
		live := false
		for _, ts := range streams {
			if f >= ts.run.Len() {
				continue
			}
			live = true
			if err := reg.Append(ts.id, ts.run.Frames[f], f); err != nil {
				fatal(fmt.Sprintf("appending frame %d for tenant %s", f, ts.id), err)
			}
			total++
		}
		if !live {
			break
		}
	}
	if err := reg.DrainAll(); err != nil {
		fatal("draining tenants", err)
	}
	slog.Info("streams complete", "tenants", len(streams), "frames", total)

	for _, ts := range streams {
		cert, err := reg.Certificate(ts.id)
		if err != nil {
			fatal(fmt.Sprintf("certificate for tenant %s", ts.id), err)
		}
		slog.Info("tenant certificate", "tenant", ts.id,
			"rows", cert.Rows, "ell", cert.Ell,
			"cov_bound", fmt.Sprintf("%.6g", cert.CovBound()),
			"rel_bound", fmt.Sprintf("%.6g", cert.RelBound()))
	}
	// Close hibernates every tenant, so the registry's whole state
	// survives in opts.dir: `ckptinfo -dir` summarizes it, and the next
	// lclsmon -tenants run resumes each stream bit-exactly.
	if err := reg.Close(); err != nil {
		fatal("closing tenant registry", err)
	}
	slog.Info("tenants hibernated", "dir", opts.dir)
}

// setupAudit builds the run's sketch-quality auditor: a Page-Hinkley
// residual detector with the -alarm-threshold λ, alarms logged via
// slog, an optional JSONL journal sink, and the /audit endpoint
// mounted on the observability mux. Audit events also land in the
// journal the endpoint serves.
func setupAudit(logPath string, lambda float64) *audit.Auditor {
	journal := audit.Default()
	if logPath != "" {
		f, err := os.OpenFile(logPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fatal("opening audit log", err)
		}
		// The sink stays attached for the process lifetime; the OS
		// closes it on exit, and JSONL appends are line-atomic.
		journal.SetSink(f)
		slog.Info("audit journal sink attached", "path", logPath)
	}
	// The drift allowance scales with the alarm threshold so one knob
	// tunes the detector: a sustained shift a tenth of λ per batch is
	// treated as drift, anything smaller as noise.
	auditor := audit.New(audit.Config{
		Residual: audit.NewPageHinkley(lambda/10, lambda),
		Journal:  journal,
		OnAlarm: func(a audit.Alarm) {
			slog.Warn("sketch drift alarm",
				"signal", a.Signal, "value", fmt.Sprintf("%.6g", a.Value),
				"batch", a.Batch, "journal_seq", a.Seq)
		},
	})
	obs.Handle("/audit", audit.Handler(auditor, journal))
	return auditor
}

// journalSave records a checkpoint-save event in the audit journal.
// The event lands after the saved snapshot was cut, so a checkpoint
// never contains its own save event.
func journalSave(cfg pipeline.Config, frame int) {
	if cfg.Audit == nil {
		return
	}
	cfg.Audit.Journal().Record(audit.KindCheckpointSave,
		"monitor state checkpointed", audit.A("frame", float64(frame)))
}

// setupLogging installs a slog text handler on stderr at the level the
// -v flag selects.
func setupLogging(verbosity int) {
	level := slog.LevelInfo
	if verbosity >= 1 {
		level = slog.LevelDebug
	}
	slog.SetDefault(slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level})))
}

// serveObs starts the observability server when addr is non-empty and
// returns a function that blocks until SIGINT/SIGTERM so the endpoints
// outlive the run; with no address it returns a no-op.
func serveObs(addr string) (hold func()) {
	if addr == "" {
		return func() {}
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		fatal("starting observability server", err)
	}
	slog.Info("observability server listening",
		"addr", ln.Addr().String(),
		"endpoints", "/metrics /metrics.json /healthz /statusz /tracez /audit /debug/pprof/")
	go func() {
		if err := (&http.Server{Handler: obs.Handler()}).Serve(ln); err != nil {
			slog.Error("observability server stopped", "err", err)
		}
	}()
	return func() {
		slog.Info("run complete; still serving observability endpoints — Ctrl-C to exit")
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
		<-ch
	}
}

func writeHTML(path string, write func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(msg string, err error) {
	slog.Error(msg, "err", err)
	os.Exit(1)
}

func countNoise(labels []int) int {
	n := 0
	for _, l := range labels {
		if l == optics.Noise {
			n++
		}
	}
	return n
}

// hasLabels reports whether the stored labels carry any information
// (more than one distinct value).
func hasLabels(labels []int) bool {
	if len(labels) == 0 {
		return false
	}
	first := labels[0]
	for _, l := range labels {
		if l != first {
			return true
		}
	}
	return false
}
