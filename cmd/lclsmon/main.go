// Command lclsmon runs the full monitoring pipeline on a stored run
// file — the counterpart of the paper artifact's run.py driver: it
// sketches the run with ARAMS in parallel, projects, embeds with UMAP,
// clusters with OPTICS, and writes an interactive HTML embedding with
// hover tooltips (the Bokeh-HTML analog of Figs. 5 and 6).
//
// Usage:
//
//	lclssim -kind diffraction -out run.lcls
//	lclsmon -in run.lcls -html embedding.html
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"os"

	"arams/internal/imgproc"
	"arams/internal/lcls"
	"arams/internal/optics"
	"arams/internal/pipeline"
	"arams/internal/sketch"
	"arams/internal/umap"
	"arams/internal/viz"
)

func main() {
	in := flag.String("in", "run.lcls", "input run file")
	html := flag.String("html", "embedding.html", "output HTML path")
	workers := flag.Int("workers", 4, "parallel sketch workers")
	ell := flag.Int("ell", 25, "initial sketch size ℓ")
	eps := flag.Float64("eps", 0, "rank-adaptive error target (0 = fixed rank)")
	beta := flag.Float64("beta", 0.9, "priority-sampling keep fraction")
	latent := flag.Int("latent", 12, "PCA latent dimension")
	useHDBSCAN := flag.Bool("hdbscan", false, "cluster with HDBSCAN* instead of OPTICS")
	reach := flag.String("reach", "", "also write the OPTICS reachability plot to this HTML path")
	seed := flag.Uint64("seed", 1, "RNG seed")
	flag.Parse()

	f, err := os.Open(*in)
	if err != nil {
		log.Fatal(err)
	}
	run, err := lcls.ReadRun(f)
	f.Close()
	if err != nil {
		log.Fatalf("lclsmon: reading %s: %v", *in, err)
	}
	fmt.Printf("run %s:%d detector %q — %d frames of %d×%d\n",
		run.Experiment, run.RunNumber, run.Detector, run.Len(), run.Width, run.Height)

	scfg := sketch.Config{Ell0: *ell, Beta: *beta, Seed: *seed}
	if *eps > 0 {
		scfg.RankAdaptive = true
		scfg.Eps = *eps
		scfg.Nu = 10
	}
	res := pipeline.Process(run.Frames, pipeline.Config{
		Pre:        imgproc.Preprocessor{Normalize: true},
		Sketch:     scfg,
		Workers:    *workers,
		LatentDim:  *latent,
		UMAP:       umap.Config{NNeighbors: 20, NEpochs: 200, Seed: *seed + 1},
		UseHDBSCAN: *useHDBSCAN,
	})

	fmt.Printf("sketch: %d directions, %.0f frames/s; total %v\n",
		res.Basis.RowsN, res.SketchThroughput, res.TotalTime.Round(1e6))
	fmt.Printf("clusters: %d (%d noise points)\n",
		optics.NumClusters(res.Labels), countNoise(res.Labels))
	if hasLabels(run.Labels) {
		fmt.Printf("agreement with stored labels: ARI %.3f\n",
			optics.ARI(res.Labels, run.Labels))
	}
	fmt.Printf("top residual outliers: %v\n", res.ResidualOutliers)

	tips := make([]string, run.Len())
	for i := range tips {
		tips[i] = fmt.Sprintf("frame %d\nstored label %d\nresidual %.3f",
			i, run.Labels[i], res.Residuals[i])
	}
	plot := viz.FromEmbedding(
		fmt.Sprintf("%s run %d — latent embedding", run.Experiment, run.RunNumber),
		res.Embedding, res.Labels, tips)
	plot.Subtitle = fmt.Sprintf("%d frames, detector %s", run.Len(), run.Detector)
	out, err := os.Create(*html)
	if err != nil {
		log.Fatal(err)
	}
	if err := plot.WriteHTML(out); err != nil {
		log.Fatal(err)
	}
	if err := out.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("interactive embedding written to %s\n", *html)

	if *reach != "" {
		opt := optics.Run(res.Embedding, 5, math.Inf(1))
		ordLabels := make([]int, len(opt.Order))
		for pos, p := range opt.Order {
			ordLabels[pos] = res.Labels[p]
		}
		rp := &viz.ReachabilityPlot{
			Title:  fmt.Sprintf("%s run %d — OPTICS reachability", run.Experiment, run.RunNumber),
			Values: opt.ReachabilityInOrder(),
			Labels: ordLabels,
		}
		rf, err := os.Create(*reach)
		if err != nil {
			log.Fatal(err)
		}
		if err := rp.WriteHTML(rf); err != nil {
			log.Fatal(err)
		}
		if err := rf.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("reachability plot written to %s\n", *reach)
	}
}

func countNoise(labels []int) int {
	n := 0
	for _, l := range labels {
		if l == optics.Noise {
			n++
		}
	}
	return n
}

// hasLabels reports whether the stored labels carry any information
// (more than one distinct value).
func hasLabels(labels []int) bool {
	if len(labels) == 0 {
		return false
	}
	first := labels[0]
	for _, l := range labels {
		if l != first {
			return true
		}
	}
	return false
}
