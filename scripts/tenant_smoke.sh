#!/usr/bin/env bash
# Tenant-churn smoke test: generate a mixed multi-tenant workload
# (beam + diffraction), stream it through lclsmon -tenants with a
# residency cap of 1 — so three tenants are forced through continuous
# hibernate/restore churn — then validate the service surface:
#
#   - /tenantz (prom) passes the exposition lint and carries a
#     tenant="<id>" series for every tenant; the JSON form parses and
#     names them all (obscheck -tenants);
#   - per-tenant engine series (tenant-labeled) coexist with the rest
#     of /metrics without breaking the exposition;
#   - the hibernate/restore churn actually happened (hibernation and
#     restore counters on /metrics are nonzero);
#   - ckptinfo -dir reads the hibernation directory back: every tenant
#     decodes, with the full stream accounted for in its certificate;
#   - a second lclsmon -tenants run over the same directory resumes
#     every hibernated stream (ingest counts double) — restore-on-next-
#     frame across a full process death.
#
# Used by the tenant-smoke CI job; also runnable locally:
#
#   ./scripts/tenant_smoke.sh [port]
set -euo pipefail

cd "$(dirname "$0")/.."
PORT="${1:-9474}"
BASE="http://127.0.0.1:${PORT}"
TMP="$(mktemp -d)"
trap 'kill "${MON_PID:-}" 2>/dev/null || true; rm -rf "$TMP"' EXIT

echo "== build =="
go build -o "$TMP/lclssim" ./cmd/lclssim
go build -o "$TMP/lclsmon" ./cmd/lclsmon
go build -o "$TMP/obscheck" ./cmd/obscheck
go build -o "$TMP/ckptinfo" ./cmd/ckptinfo

echo "== mixed multi-tenant workload (beam + diffraction) =="
"$TMP/lclssim" -mix amo=beam,cxi=diffraction,mfx=beam \
  -frames 96 -size 24 -out-dir "$TMP/runs"

echo "== lclsmon -tenants (3 tenants, max-resident 1: forced churn) =="
"$TMP/lclsmon" \
  -tenants "amo=$TMP/runs/amo.lcls,cxi=$TMP/runs/cxi.lcls,mfx=$TMP/runs/mfx.lcls" \
  -checkpoint-dir "$TMP/tenants" -tenant-max-resident 1 \
  -shards 2 -listen "127.0.0.1:${PORT}" &
MON_PID=$!

echo "== wait for /healthz =="
for i in $(seq 1 100); do
  if curl -fsS "$BASE/healthz" >/dev/null 2>&1; then break; fi
  if ! kill -0 "$MON_PID" 2>/dev/null; then
    echo "lclsmon exited before serving" >&2; exit 1
  fi
  sleep 0.2
done

echo "== wait for all streams to hibernate =="
for i in $(seq 1 150); do
  n="$(curl -fsS "$BASE/tenantz?format=prom" | grep -c '^arams_tenantz_state{tenant="[^"]*"} 0$' || true)"
  if [ "$n" -eq 3 ]; then break; fi
  sleep 0.2
done
if [ "${n:-0}" -ne 3 ]; then
  echo "expected 3 hibernated tenants on /tenantz, saw $n" >&2
  curl -fsS "$BASE/tenantz?format=prom" >&2 || true
  exit 1
fi

echo "== obscheck (tenant registry + per-tenant engine series) =="
"$TMP/obscheck" -base "$BASE" \
  -want arams_engine_frames_total,arams_tenant_hibernations_total,arams_tenant_restores_total \
  -tenants amo,cxi,mfx

echo "== residency churn really happened =="
curl -fsS "$BASE/metrics" -o "$TMP/metrics.prom"
hib="$(awk '$1 == "arams_tenant_hibernations_total" {print int($2)}' "$TMP/metrics.prom")"
res="$(awk '$1 == "arams_tenant_restores_total" {print int($2)}' "$TMP/metrics.prom")"
echo "hibernations=$hib restores=$res"
if [ "${hib:-0}" -lt 3 ]; then
  echo "expected >=3 hibernations under max-resident 1, saw ${hib:-0}" >&2; exit 1
fi
if [ "${res:-0}" -lt 1 ]; then
  echo "expected >=1 mid-stream restore under max-resident 1, saw ${res:-0}" >&2; exit 1
fi

kill "$MON_PID"
wait "$MON_PID" 2>/dev/null || true
MON_PID=

echo "== ckptinfo -dir reads the hibernation directory =="
"$TMP/ckptinfo" -dir "$TMP/tenants"
count="$("$TMP/ckptinfo" -json -dir "$TMP/tenants" | grep -c '"ingests": 96')"
if [ "$count" -ne 3 ]; then
  echo "expected 3 tenants with 96 ingests, saw $count" >&2; exit 1
fi

echo "== second run over the same directory: restore across process death =="
"$TMP/lclsmon" \
  -tenants "amo=$TMP/runs/amo.lcls,cxi=$TMP/runs/cxi.lcls,mfx=$TMP/runs/mfx.lcls" \
  -checkpoint-dir "$TMP/tenants" -tenant-max-resident 1 -shards 2
count="$("$TMP/ckptinfo" -json -dir "$TMP/tenants" | grep -c '"ingests": 192')"
if [ "$count" -ne 3 ]; then
  echo "expected 3 tenants resumed to 192 ingests, saw $count" >&2
  "$TMP/ckptinfo" -dir "$TMP/tenants" >&2 || true
  exit 1
fi

echo "tenant smoke: PASS"
