#!/usr/bin/env bash
# Fabric smoke test: boot a real two-process worker fleet with
# fabricworker, run lclsmon in -fabric streaming mode against it over
# TCP, kill one worker mid-stream to force the restore+replay recovery
# path, and require the run to finish with an embedding and a final
# checkpoint. The fleet runs with full observability wired up:
#
#   - the coordinator serves /tracez, /fleetz, and a flight recorder;
#     worker 0 serves its own obs endpoints and shares the coordinator's
#     flight dump directory;
#   - obscheck against the coordinator requires a cross-process trace
#     (worker_absorb spans stitched under the coordinator's ingest
#     traces) and a /fleetz exposition carrying coordinator + worker0
#     series that passes the Prometheus lint;
#   - obscheck against worker 0's obs endpoint validates the worker-side
#     exposition;
#   - the worker-1 kill degrades its shard, which triggers the
#     coordinator's flight recorder and fans out over the fabric: the
#     script requires correlated dumps — a worker0 dump whose trigger ID
#     matches a coordinator dump — in the shared directory.
#
# Then run the in-process fabric test suites under -race: the
# network-chaos suite (delay, corruption, partition, mid-frame close,
# worker kill/restart), the bit-exact loopback equivalence tests, the
# stop-leak regression, the concurrency hammer, and the new
# cross-process trace-stitch and flight fan-out tests.
#
# Used by the fabric-smoke CI job; also runnable locally:
#
#   ./scripts/fabric_smoke.sh [port]
set -euo pipefail

cd "$(dirname "$0")/.."
PORT="${1:-9474}"
BASE="http://127.0.0.1:${PORT}"
TMP="$(mktemp -d)"
trap 'kill "${W0_PID:-}" "${W1_PID:-}" "${MON_PID:-}" 2>/dev/null || true; rm -rf "$TMP"' EXIT

echo "== build =="
go build -o "$TMP/lclssim" ./cmd/lclssim
go build -o "$TMP/lclsmon" ./cmd/lclsmon
go build -o "$TMP/fabricworker" ./cmd/fabricworker
go build -o "$TMP/obscheck" ./cmd/obscheck

echo "== synthetic run =="
# Long enough (2048 frames) that the mid-stream worker kill below lands
# while ingest is still running and heartbeats fire during the stream.
"$TMP/lclssim" -kind beam -frames 2048 -size 32 -out "$TMP/run.lcls"

echo "== worker fleet (2 processes, ephemeral ports, shared flight dir) =="
"$TMP/fabricworker" -listen 127.0.0.1:0 -addr-file "$TMP/w0.addr" \
  -obs-listen 127.0.0.1:0 -obs-addr-file "$TMP/w0.obs.addr" \
  -flight-dir "$TMP/flight" -flight-id worker0 &
W0_PID=$!
"$TMP/fabricworker" -listen 127.0.0.1:0 -addr-file "$TMP/w1.addr" \
  -flight-dir "$TMP/flight" -flight-id worker1 &
W1_PID=$!
for i in $(seq 1 100); do
  [ -s "$TMP/w0.addr" ] && [ -s "$TMP/w1.addr" ] && [ -s "$TMP/w0.obs.addr" ] && break
  sleep 0.1
done
W0="$(cat "$TMP/w0.addr")"
W1="$(cat "$TMP/w1.addr")"
W0OBS="$(cat "$TMP/w0.obs.addr")"
echo "workers: $W0 $W1 (worker0 obs: $W0OBS)"

echo "== kill worker 1 mid-stream (recovery: degrade keeps coverage, flight fan-out fires) =="
# Keyed off the first checkpoint write rather than a fixed sleep, so the
# kill provably lands while the stream is still running on any machine.
(
  for i in $(seq 1 400); do
    [ -s "$TMP/ckpt/lclsmon.ckpt" ] && break
    sleep 0.05
  done
  kill "$W1_PID" 2>/dev/null || true
) &

echo "== lclsmon -fabric (distributed streaming over TCP, obs server held open) =="
"$TMP/lclsmon" -in "$TMP/run.lcls" -html "$TMP/embedding.html" \
  -checkpoint-dir "$TMP/ckpt" -checkpoint-every 128 -window 128 \
  -listen "127.0.0.1:${PORT}" -flight-dir "$TMP/flight" \
  -fabric "$W0,$W1" &
MON_PID=$!

echo "== wait for coordinator /healthz =="
for i in $(seq 1 100); do
  if curl -fsS "$BASE/healthz" >/dev/null 2>&1; then break; fi
  if ! kill -0 "$MON_PID" 2>/dev/null; then
    echo "lclsmon exited before serving" >&2; exit 1
  fi
  sleep 0.2
done
curl -fsS "$BASE/healthz" >/dev/null

echo "== wait for the run to finish (embedding + checkpoint) =="
for i in $(seq 1 300); do
  [ -s "$TMP/embedding.html" ] && [ -s "$TMP/ckpt/lclsmon.ckpt" ] && break
  if ! kill -0 "$MON_PID" 2>/dev/null; then
    echo "lclsmon died mid-run" >&2; exit 1
  fi
  sleep 0.2
done
test -s "$TMP/embedding.html" || { echo "no embedding written" >&2; exit 1; }
test -s "$TMP/ckpt/lclsmon.ckpt" || { echo "no final checkpoint" >&2; exit 1; }

echo "== wait for cross-process traces and worker0 fleet series =="
for i in $(seq 1 100); do
  spans="$(curl -fsS "$BASE/tracez?format=json" | grep -c '"name": *"worker_absorb"' || true)"
  fleet="$(curl -fsS "$BASE/fleetz?format=prom" | grep -c 'worker="worker0"' || true)"
  if [ "$spans" -ge 1 ] && [ "$fleet" -ge 1 ]; then break; fi
  sleep 0.2
done

echo "== obscheck: coordinator (stitched traces + merged fleet view) =="
"$TMP/obscheck" -base "$BASE" \
  -want arams_stage_duration_seconds,arams_engine_frames_total,arams_fabric_worker_uptime_seconds \
  -min-traces 1 -want-spans worker_absorb,fabric_rpc \
  -fleet-workers coordinator,worker0

echo "== obscheck: worker 0 obs endpoint =="
"$TMP/obscheck" -base "http://${W0OBS}" -skip-audit \
  -want arams_fabric_worker_frames_total,arams_fabric_worker_rpc_total

echo "== correlated flight dumps (coordinator trigger ID on worker dump) =="
WDUMP=""
for i in $(seq 1 100); do
  WDUMP="$(ls "$TMP/flight"/flight-worker0-*.jsonl 2>/dev/null | head -n 1 || true)"
  [ -n "$WDUMP" ] && break
  sleep 0.2
done
test -n "$WDUMP" || { echo "no worker0 flight dump in shared dir" >&2; ls -l "$TMP/flight" >&2 || true; exit 1; }
WID="${WDUMP##*-}"; WID="${WID%.jsonl}"
ls "$TMP/flight"/flight-coordinator-*-"$WID".jsonl >/dev/null 2>&1 || {
  echo "no coordinator dump shares worker0's trigger ID $WID" >&2
  ls -l "$TMP/flight" >&2 || true
  exit 1
}
echo "correlated dumps for trigger $WID:"
ls "$TMP/flight" | sed 's/^/  /'

kill "$MON_PID" 2>/dev/null || true
wait "$MON_PID" 2>/dev/null || true
kill "$W0_PID" 2>/dev/null || true

echo "== fabric suites under -race =="
go test -race -count=1 -v \
  -run 'TestChaos|TestWorkerKillRestart|TestLoopback|TestStopDuringHungReconcile|TestFabricRaceHammer|TestCrossProcessTraceStitch|TestFleetFlightFanout|TestWorkerTraced|TestWorkerHeartbeatHealthBlock|TestWorkerStatsReq|TestWorkerFlightReq' \
  ./internal/fabric/

echo "== remote merge + wire codec + fleet merge units =="
go test -count=1 -run 'TestMergeRemote|TestClassify' ./internal/parallel/
go test -count=1 -run 'TestWire|TestPayload' ./internal/ckpt/ ./internal/fabric/
go test -count=1 -run 'TestFleet' ./internal/obs/

echo "fabric smoke: PASS"
