#!/usr/bin/env bash
# Fabric smoke test: boot a real two-process worker fleet with
# fabricworker, run lclsmon in -fabric streaming mode against it over
# TCP, kill one worker mid-stream to force the restore+replay recovery
# path, and require the run to finish with an embedding and a final
# checkpoint. Then run the in-process fabric test suites under -race:
# the network-chaos suite (delay, corruption, partition, mid-frame
# close, worker kill/restart), the bit-exact loopback equivalence
# tests, the stop-leak regression, and the concurrency hammer.
#
# Used by the fabric-smoke CI job; also runnable locally:
#
#   ./scripts/fabric_smoke.sh
set -euo pipefail

cd "$(dirname "$0")/.."
TMP="$(mktemp -d)"
trap 'kill "${W0_PID:-}" "${W1_PID:-}" 2>/dev/null || true; rm -rf "$TMP"' EXIT

echo "== build =="
go build -o "$TMP/lclssim" ./cmd/lclssim
go build -o "$TMP/lclsmon" ./cmd/lclsmon
go build -o "$TMP/fabricworker" ./cmd/fabricworker

echo "== synthetic run =="
"$TMP/lclssim" -kind beam -frames 256 -size 32 -out "$TMP/run.lcls"

echo "== worker fleet (2 processes, ephemeral ports) =="
"$TMP/fabricworker" -listen 127.0.0.1:0 -addr-file "$TMP/w0.addr" &
W0_PID=$!
"$TMP/fabricworker" -listen 127.0.0.1:0 -addr-file "$TMP/w1.addr" &
W1_PID=$!
for i in $(seq 1 100); do
  [ -s "$TMP/w0.addr" ] && [ -s "$TMP/w1.addr" ] && break
  sleep 0.1
done
W0="$(cat "$TMP/w0.addr")"
W1="$(cat "$TMP/w1.addr")"
echo "workers: $W0 $W1"

echo "== kill worker 1 mid-stream (recovery: degrade keeps coverage) =="
(sleep 0.5; kill "$W1_PID" 2>/dev/null || true) &

echo "== lclsmon -fabric (distributed streaming over TCP) =="
"$TMP/lclsmon" -in "$TMP/run.lcls" -html "$TMP/embedding.html" \
  -checkpoint-dir "$TMP/ckpt" -checkpoint-every 128 -window 128 \
  -fabric "$W0,$W1"

test -s "$TMP/embedding.html" || { echo "no embedding written" >&2; exit 1; }
test -s "$TMP/ckpt/lclsmon.ckpt" || { echo "no final checkpoint" >&2; exit 1; }
kill "$W0_PID" 2>/dev/null || true

echo "== fabric suites under -race =="
go test -race -count=1 -v \
  -run 'TestChaos|TestWorkerKillRestart|TestLoopback|TestStopDuringHungReconcile|TestFabricRaceHammer' \
  ./internal/fabric/

echo "== remote merge + wire codec units =="
go test -count=1 -run 'TestMergeRemote|TestClassify' ./internal/parallel/
go test -count=1 -run 'TestWire|TestPayload' ./internal/ckpt/ ./internal/fabric/

echo "fabric smoke: PASS"
