#!/usr/bin/env bash
# check_bce.sh — assert the mat inner kernels stay bounds-check-free.
#
# Compiles internal/mat with the ssa/check_bce debug flag and fails if
# the compiler reports any per-element IsInBounds check inside
# internal/mat/inner.go, the file holding the multiply-add inner loops
# of the tiled Gram / MulABt / MulTo kernels.
#
# Per-call IsSliceInBounds findings (the `b = b[:n]` hoists at the top
# of dot2x2/dot1x2) are allowed: hoisting the check out of the element
# loop is the point of the idiom. What must never appear is IsInBounds,
# a compare+branch inside the element loop itself.
set -euo pipefail
cd "$(dirname "$0")/.."

out="$(go build -gcflags='-d=ssa/check_bce' ./internal/mat/ 2>&1 | grep 'inner\.go' || true)"
bad="$(printf '%s\n' "$out" | grep 'Found IsInBounds' || true)"

if [[ -n "$bad" ]]; then
    echo "FAIL: per-element bounds checks in internal/mat/inner.go:" >&2
    printf '%s\n' "$bad" >&2
    echo "Keep inner loops in the hoisted or slice-advance idiom (see inner.go header)." >&2
    exit 1
fi

echo "check_bce: internal/mat/inner.go is free of per-element bounds checks"
