#!/usr/bin/env bash
# Endpoint smoke test: run lclsmon against a small synthetic run with
# the observability server, the flight recorder, and 4 shards enabled,
# then validate every endpoint with obscheck — /metrics must parse as
# Prometheus exposition format and expose both wall and CPU stage
# histograms, /tracez?format=json must round-trip and hold at least
# one fully connected per-batch trace, /audit and /healthz must answer,
# and /fleetz (always mounted, single-member in non-fabric runs) must
# pass the same exposition lint with the coordinator's own series.
#
# Used by the endpoint-smoke CI job; also runnable locally:
#
#   ./scripts/endpoint_smoke.sh [port]
set -euo pipefail

cd "$(dirname "$0")/.."
PORT="${1:-9473}"
BASE="http://127.0.0.1:${PORT}"
TMP="$(mktemp -d)"
trap 'kill "${MON_PID:-}" 2>/dev/null || true; rm -rf "$TMP"' EXIT

echo "== build =="
go build -o "$TMP/lclssim" ./cmd/lclssim
go build -o "$TMP/lclsmon" ./cmd/lclsmon
go build -o "$TMP/obscheck" ./cmd/obscheck

echo "== synthetic run =="
"$TMP/lclssim" -kind beam -frames 256 -size 32 -out "$TMP/run.lcls"

echo "== lclsmon (4 shards, streaming, flight recorder armed) =="
"$TMP/lclsmon" -in "$TMP/run.lcls" -html "$TMP/embedding.html" \
  -checkpoint-dir "$TMP/ckpt" -checkpoint-every 128 -window 128 \
  -shards 4 -listen "127.0.0.1:${PORT}" \
  -flight-dir "$TMP/flight" -frame-budget 8ms &
MON_PID=$!

echo "== wait for /healthz =="
for i in $(seq 1 100); do
  if curl -fsS "$BASE/healthz" >/dev/null 2>&1; then break; fi
  if ! kill -0 "$MON_PID" 2>/dev/null; then
    echo "lclsmon exited before serving" >&2; exit 1
  fi
  sleep 0.2
done
curl -fsS "$BASE/healthz" >/dev/null

# Give the stream time to finish so /tracez holds completed ingest
# traces; the run is small, so poll until ingest traces appear.
echo "== wait for retained traces =="
for i in $(seq 1 150); do
  n="$(curl -fsS "$BASE/tracez?format=json" | grep -c '"root": "ingest_batch"' || true)"
  if [ "$n" -ge 1 ]; then break; fi
  sleep 0.2
done

echo "== obscheck =="
# -forbid-labels tenant: a single-tenant run must expose exactly the
# historical unlabeled series — linking the tenant registry into the
# binary must not leak tenant="" labels onto /metrics.
"$TMP/obscheck" -base "$BASE" \
  -want arams_stage_duration_seconds,arams_stage_cpu_seconds,arams_engine_frames_total \
  -min-traces 1 -fleet-workers coordinator -forbid-labels tenant

echo "== endpoint spot checks =="
# Download before heading: `curl | head` races head's pipe close
# against curl's writes and trips pipefail with exit 23 once the
# exposition outgrows the pipe buffer.
curl -fsS "$BASE/metrics" -o "$TMP/metrics.prom"
head -n 5 "$TMP/metrics.prom"
curl -fsS "$BASE/tracez" >/dev/null
curl -fsS "$BASE/statusz" >/dev/null
curl -fsS "$BASE/metrics.json" >/dev/null
curl -fsS "$BASE/audit" >/dev/null
curl -fsS "$BASE/fleetz" >/dev/null

kill "$MON_PID"
wait "$MON_PID" 2>/dev/null || true
echo "endpoint smoke: PASS"
