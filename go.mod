module arams

go 1.22
